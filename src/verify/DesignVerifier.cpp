#include "verify/DesignVerifier.hpp"

#include <cmath>

namespace pico::verify
{

namespace
{

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Generous physical sanity bounds; real spaces sit far inside. */
constexpr uint32_t maxLineBytes = 4096;
constexpr uint32_t maxAssoc = 4096;
constexpr uint32_t maxPorts = 8;
/** Smallest line the single-pass simulators cover (one word). */
constexpr uint32_t minLineBytes = 4;

/**
 * Feasibility of one cross-product combination, computed here
 * independently of CacheSpace::enumerate() so the verifier
 * cross-checks the enumeration logic instead of restating it.
 */
bool
combinationFeasible(uint64_t size_bytes, uint32_t assoc,
                    uint32_t line_bytes, uint32_t ports)
{
    if (assoc == 0 || line_bytes == 0 || ports == 0)
        return false;
    uint64_t frame = static_cast<uint64_t>(assoc) * line_bytes;
    if (frame == 0 || size_bytes % frame != 0)
        return false;
    uint64_t sets = size_bytes / frame;
    return sets >= 1 && isPowerOfTwo(sets) &&
           isPowerOfTwo(line_bytes) && line_bytes >= minLineBytes;
}

} // namespace

bool
verifyCacheConfig(const cache::CacheConfig &config,
                  const std::string &what, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    if (!isPowerOfTwo(config.sets))
        diags.error("cache.geometry", what,
                    "set count " + std::to_string(config.sets) +
                        " is not a power of two");
    if (!isPowerOfTwo(config.lineBytes))
        diags.error("cache.geometry", what,
                    "line size " +
                        std::to_string(config.lineBytes) +
                        " is not a power of two");
    if (config.lineBytes < minLineBytes ||
        config.lineBytes > maxLineBytes)
        diags.error("cache.geometry", what,
                    "line size " +
                        std::to_string(config.lineBytes) +
                        " is outside [" +
                        std::to_string(minLineBytes) + ", " +
                        std::to_string(maxLineBytes) + "]");
    if (config.assoc < 1 || config.assoc > maxAssoc)
        diags.error("cache.geometry", what,
                    "associativity " +
                        std::to_string(config.assoc) +
                        " is outside [1, " +
                        std::to_string(maxAssoc) + "]");
    if (config.ports < 1 || config.ports > maxPorts)
        diags.error("cache.geometry", what,
                    "port count " + std::to_string(config.ports) +
                        " is outside [1, " +
                        std::to_string(maxPorts) + "]");
    return diags.errorCount() == before;
}

bool
verifyCacheSpace(const dse::CacheSpace &space,
                 const std::string &what, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    if (space.sizesBytes.empty())
        diags.error("space.domain", what, "no sizes specified");
    if (space.assocs.empty())
        diags.error("space.domain", what,
                    "no associativities specified");
    if (space.lineSizes.empty())
        diags.error("space.domain", what, "no line sizes specified");
    if (space.portCounts.empty())
        diags.error("space.domain", what,
                    "no port counts specified");

    for (uint64_t size : space.sizesBytes) {
        if (size == 0)
            diags.error("space.domain", what, "size of zero bytes");
    }
    for (uint32_t line : space.lineSizes) {
        if (!isPowerOfTwo(line) || line < minLineBytes ||
            line > maxLineBytes)
            diags.error("space.domain", what,
                        "line size " + std::to_string(line) +
                            " is not a power of two in [" +
                            std::to_string(minLineBytes) + ", " +
                            std::to_string(maxLineBytes) + "]");
    }
    for (uint32_t assoc : space.assocs) {
        if (assoc < 1 || assoc > maxAssoc)
            diags.error("space.domain", what,
                        "associativity " + std::to_string(assoc) +
                            " is outside [1, " +
                            std::to_string(maxAssoc) + "]");
    }
    for (uint32_t ports : space.portCounts) {
        if (ports < 1 || ports > maxPorts)
            diags.error("space.domain", what,
                        "port count " + std::to_string(ports) +
                            " is outside [1, " +
                            std::to_string(maxPorts) + "]");
    }
    if (space.replacements.empty())
        diags.error("space.domain", what,
                    "no replacement policies specified");
    if (space.writePolicies.empty())
        diags.error("space.domain", what,
                    "no write policies specified");
    // Duplicate axis entries would enumerate the same configuration
    // twice (duplicate Pareto ids downstream), so they are domain
    // errors, not redundancy.
    for (size_t i = 0; i < space.replacements.size(); ++i)
        for (size_t j = i + 1; j < space.replacements.size(); ++j)
            if (space.replacements[i] == space.replacements[j])
                diags.error("space.domain", what,
                            "duplicate replacement policy '" +
                                std::string(cache::replacementName(
                                    space.replacements[i])) +
                                "'");
    for (size_t i = 0; i < space.writePolicies.size(); ++i)
        for (size_t j = i + 1; j < space.writePolicies.size(); ++j)
            if (space.writePolicies[i] == space.writePolicies[j])
                diags.error("space.domain", what,
                            "duplicate write policy '" +
                                std::string(cache::writePolicyName(
                                    space.writePolicies[i])) +
                                "'");
    if (diags.errorCount() != before)
        return false;

    size_t feasible = 0;
    for (uint64_t size : space.sizesBytes) {
        for (uint32_t assoc : space.assocs) {
            for (uint32_t line : space.lineSizes) {
                for (uint32_t ports : space.portCounts) {
                    if (combinationFeasible(size, assoc, line,
                                            ports))
                        ++feasible;
                }
            }
        }
    }
    if (feasible == 0)
        diags.error("space.domain", what,
                    "no feasible configuration in the space");
    return diags.errorCount() == before;
}

bool
verifyHierarchy(const cache::HierarchyConfig &config,
                Diagnostics &diags)
{
    size_t before = diags.errorCount();
    verifyCacheConfig(config.icache, "I$" + config.icache.name(),
                      diags);
    verifyCacheConfig(config.dcache, "D$" + config.dcache.name(),
                      diags);
    verifyCacheConfig(config.ucache, "U$" + config.ucache.name(),
                      diags);

    std::string what = "hierarchy U$" + config.ucache.name();
    if (config.ucache.sizeBytes() < config.icache.sizeBytes() ||
        config.ucache.sizeBytes() < config.dcache.sizeBytes())
        diags.error("hierarchy.inclusion", what,
                    "the unified L2 is smaller than an L1 "
                    "(inclusion, section 3.1)");
    if (config.ucache.lineBytes < config.icache.lineBytes ||
        config.ucache.lineBytes < config.dcache.lineBytes)
        diags.error("hierarchy.inclusion", what,
                    "the unified L2's lines are shorter than an "
                    "L1's (inclusion, section 3.1)");
    if (config.l2HitLatency == 0 || config.memoryLatency == 0)
        diags.error("hierarchy.inclusion", what,
                    "stall-model latencies must be positive");
    return diags.errorCount() == before;
}

bool
verifyAhhParams(const core::ComponentParams &params,
                uint64_t granule_refs, const std::string &what,
                Diagnostics &diags)
{
    size_t before = diags.errorCount();
    constexpr double eps = 1e-9;
    if (!std::isfinite(params.u1) || !std::isfinite(params.p1) ||
        !std::isfinite(params.lav)) {
        diags.error("ahh.domain", what,
                    "non-finite trace parameter");
        return false;
    }
    if (params.u1 <= 0.0 ||
        params.u1 > static_cast<double>(granule_refs))
        diags.error("ahh.domain", what,
                    "u(1) = " + std::to_string(params.u1) +
                        " is outside (0, granule] for granule " +
                        std::to_string(granule_refs));
    if (params.p1 < 0.0 || params.p1 > 1.0 + eps)
        diags.error("ahh.domain", what,
                    "p1 = " + std::to_string(params.p1) +
                        " is outside [0, 1]");
    if (params.lav < 1.0 - eps)
        diags.error("ahh.domain", what,
                    "lav = " + std::to_string(params.lav) +
                        " is below 1");
    if (params.lav > params.u1 + eps)
        diags.error("ahh.domain", what,
                    "lav = " + std::to_string(params.lav) +
                        " exceeds u(1) = " +
                        std::to_string(params.u1));
    if (diags.errorCount() == before) {
        // p2 (eq. 4.4) <= 1 follows from p1 >= 0; p2 < 0 means the
        // measured trace violates the run model's assumption
        // lav >= 1 + p1 — well-defined data, inaccurate model.
        double p2 = params.p2();
        if (!std::isfinite(p2) || p2 > 1.0 + eps)
            diags.error("ahh.domain", what,
                        "p2 = " + std::to_string(p2) +
                            " is outside the run-model domain");
        else if (p2 < 0.0)
            diags.warning(
                "ahh.domain", what,
                "p2 = " + std::to_string(p2) +
                    " is negative: the measured trace violates "
                    "the run-model assumption lav >= 1 + p1 "
                    "(eq. 4.4); extrapolated miss rates may be "
                    "inaccurate");
    }
    return diags.errorCount() == before;
}

} // namespace pico::verify
