#include "verify/ProgramVerifier.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pico::verify
{

namespace
{

std::string
blockName(const ir::Function &func, uint32_t block)
{
    std::ostringstream os;
    os << "func " << func.name << " block " << block;
    return os.str();
}

void
checkStructure(const ir::Program &prog, Diagnostics &diags)
{
    if (!prog.finalized())
        diags.error("ir.structure", "program " + prog.name,
                    "program has not been finalized");
    if (prog.functions.empty()) {
        diags.error("ir.structure", "program " + prog.name,
                    "program has no functions");
        return;
    }
    if (prog.entryFunction >= prog.functions.size())
        diags.error("ir.structure", "program " + prog.name,
                    "entry function " +
                        std::to_string(prog.entryFunction) +
                        " does not exist (" +
                        std::to_string(prog.functions.size()) +
                        " function(s))");
    for (size_t f = 0; f < prog.functions.size(); ++f) {
        const auto &func = prog.functions[f];
        if (func.blocks.empty())
            diags.error("ir.structure", "func " + func.name,
                        "function has no blocks");
        if (func.id != f)
            diags.error("ir.structure", "func " + func.name,
                        "function id " + std::to_string(func.id) +
                            " does not match its index " +
                            std::to_string(f));
        for (size_t b = 0; b < func.blocks.size(); ++b) {
            if (func.blocks[b].id != b)
                diags.error(
                    "ir.structure", blockName(func, b),
                    "block id " +
                        std::to_string(func.blocks[b].id) +
                        " does not match its index " +
                        std::to_string(b));
        }
    }
}

void
checkEdges(const ir::Program &prog, Diagnostics &diags)
{
    constexpr double probTolerance = 1e-6; // finalize()'s tolerance
    for (const auto &func : prog.functions) {
        for (size_t b = 0; b < func.blocks.size(); ++b) {
            const auto &block = func.blocks[b];
            double sum = 0.0;
            for (const auto &edge : block.succs) {
                if (edge.target >= func.blocks.size())
                    diags.error(
                        "ir.edge-target", blockName(func, b),
                        "edge targets block " +
                            std::to_string(edge.target) +
                            " but the function has only " +
                            std::to_string(func.blocks.size()) +
                            " block(s)");
                if (!std::isfinite(edge.prob) ||
                    edge.prob < 0.0 || edge.prob > 1.0)
                    diags.error(
                        "ir.edge-prob", blockName(func, b),
                        "edge probability " +
                            std::to_string(edge.prob) +
                            " is outside [0, 1]");
                sum += edge.prob;
            }
            if (!block.succs.empty() &&
                std::fabs(sum - 1.0) > probTolerance)
                diags.error("ir.edge-prob", blockName(func, b),
                            "edge probabilities sum to " +
                                std::to_string(sum) +
                                ", expected 1");
        }
    }
}

void
checkOperands(const ir::Program &prog, Diagnostics &diags)
{
    for (const auto &func : prog.functions) {
        for (size_t b = 0; b < func.blocks.size(); ++b) {
            const auto &block = func.blocks[b];
            if (block.callee >= 0 &&
                static_cast<size_t>(block.callee) >=
                    prog.functions.size())
                diags.error("ir.operands", blockName(func, b),
                            "callee " +
                                std::to_string(block.callee) +
                                " does not exist");
            for (size_t o = 0; o < block.ops.size(); ++o) {
                const auto &op = block.ops[o];
                std::string what = blockName(func, b) + " op " +
                                   std::to_string(o);
                if (op.latency < 1)
                    diags.error("ir.operands", what,
                                "operation latency must be >= 1");
                if (op.isMem() &&
                    op.streamId >= prog.streams.size())
                    diags.error(
                        "ir.operands", what,
                        "memory operation references stream " +
                            std::to_string(op.streamId) +
                            " but the program has " +
                            std::to_string(prog.streams.size()) +
                            " stream(s)");
                for (uint16_t dep : op.deps) {
                    if (dep >= o)
                        diags.error(
                            "ir.operands", what,
                            "dependence on operation " +
                                std::to_string(dep) +
                                " which is not earlier in the "
                                "block");
                }
            }
        }
    }
}

/**
 * Flow conservation of profiling counts. The execution engine
 * increments a block's profileCount on every entry and a function's
 * callCount on every entry of block 0, so two exact invariants hold
 * for every profile — complete or truncated:
 *
 *  - profileCount(entry block) == callCount, by construction;
 *  - a non-entry block is only entered over an intra-function edge,
 *    and each entry of a predecessor exits over at most one edge, so
 *    profileCount(b) <= sum of profileCount over b's predecessors
 *    (truncation only retires fewer exits, preserving <=).
 */
void
checkFlow(const ir::Program &prog, Diagnostics &diags)
{
    for (const auto &func : prog.functions) {
        if (func.blocks.empty())
            continue;
        if (func.blocks[0].profileCount != func.callCount)
            diags.error(
                "ir.flow", blockName(func, 0),
                "entry block entered " +
                    std::to_string(func.blocks[0].profileCount) +
                    " time(s) but the function was called " +
                    std::to_string(func.callCount) + " time(s)");

        std::vector<uint64_t> inflow(func.blocks.size(), 0);
        for (const auto &block : func.blocks) {
            for (const auto &edge : block.succs) {
                if (edge.target < func.blocks.size())
                    inflow[edge.target] += block.profileCount;
            }
        }
        for (size_t b = 1; b < func.blocks.size(); ++b) {
            if (func.blocks[b].profileCount > inflow[b])
                diags.error(
                    "ir.flow", blockName(func, b),
                    "block entered " +
                        std::to_string(func.blocks[b].profileCount) +
                        " time(s) but its predecessors were "
                        "entered only " +
                        std::to_string(inflow[b]) + " time(s)");
        }
    }
}

void
checkStreams(const ir::Program &prog, Diagnostics &diags)
{
    struct Region
    {
        uint64_t lo;
        uint64_t hi;
        size_t index;
    };
    std::vector<Region> regions;
    for (size_t s = 0; s < prog.streams.size(); ++s) {
        const auto &stream = prog.streams[s];
        std::string what = "stream " + std::to_string(s);
        if (stream.sizeWords == 0) {
            diags.error("ir.stream", what,
                        "stream has zero size");
            continue;
        }
        if (prog.finalized()) {
            if (stream.baseAddr < ir::Program::dataBase) {
                diags.error(
                    "ir.stream", what,
                    "base address 0x" +
                        [&] {
                            std::ostringstream os;
                            os << std::hex << stream.baseAddr;
                            return os.str();
                        }() +
                        " is below the data base");
                continue;
            }
            regions.push_back(Region{
                stream.baseAddr,
                stream.baseAddr + stream.sizeWords * 4, s});
        }
    }
    std::sort(regions.begin(), regions.end(),
              [](const Region &a, const Region &b) {
                  return a.lo < b.lo;
              });
    for (size_t i = 1; i < regions.size(); ++i) {
        if (regions[i].lo < regions[i - 1].hi)
            diags.error(
                "ir.stream",
                "stream " + std::to_string(regions[i].index),
                "region overlaps stream " +
                    std::to_string(regions[i - 1].index));
    }
}

} // namespace

bool
verifyProgram(const ir::Program &prog, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    checkStructure(prog, diags);
    checkEdges(prog, diags);
    checkOperands(prog, diags);
    checkFlow(prog, diags);
    checkStreams(prog, diags);
    return diags.errorCount() == before;
}

bool
verifyLayout(const ir::Program &prog,
             const linker::LinkedBinary &bin, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    const uint64_t textBase = linker::LinkedBinary::textBase;
    const uint64_t textEnd = textBase + bin.textSize();
    const uint32_t packet = bin.fetchPacketBytes();

    if (bin.numFunctions() != prog.functions.size()) {
        diags.error("layout.bounds", "binary " + bin.machineName(),
                    "binary places " +
                        std::to_string(bin.numFunctions()) +
                        " function(s) but the program has " +
                        std::to_string(prog.functions.size()));
        return false;
    }
    if (bin.textSize() == 0)
        diags.error("layout.bounds", "binary " + bin.machineName(),
                    "text segment is empty");
    if (packet == 0 || (packet & (packet - 1)) != 0)
        diags.error("layout.align", "binary " + bin.machineName(),
                    "fetch-packet size " + std::to_string(packet) +
                        " is not a power of two");

    // Per-function monotone contiguous placement plus global
    // non-overlap across functions (the linker lays functions out
    // hottest-first, so function order in memory is not function
    // index order).
    struct Extent
    {
        uint64_t lo;
        uint64_t hi;
        std::string what;
    };
    std::vector<Extent> extents;
    for (size_t f = 0; f < bin.numFunctions(); ++f) {
        const auto &func = prog.functions[f];
        size_t blocks = bin.numBlocks(f);
        if (blocks != func.blocks.size()) {
            diags.error("layout.bounds", "func " + func.name,
                        "binary places " + std::to_string(blocks) +
                            " block(s) but the function has " +
                            std::to_string(func.blocks.size()));
            continue;
        }
        if (blocks == 0)
            continue;
        const auto &entry =
            bin.block(static_cast<uint32_t>(f), 0);
        if (packet != 0 && entry.startAddr % packet != 0)
            diags.error("layout.align", blockName(func, 0),
                        "function entry at 0x" +
                            [&] {
                                std::ostringstream os;
                                os << std::hex << entry.startAddr;
                                return os.str();
                            }() +
                            " is not fetch-packet aligned");
        uint64_t cursor = entry.startAddr;
        uint64_t funcEnd = entry.startAddr;
        for (size_t b = 0; b < blocks; ++b) {
            const auto &placed = bin.block(
                static_cast<uint32_t>(f),
                static_cast<uint32_t>(b));
            if (placed.startAddr < cursor)
                diags.error(
                    "layout.monotone", blockName(func, b),
                    "block at 0x" +
                        [&] {
                            std::ostringstream os;
                            os << std::hex << placed.startAddr;
                            return os.str();
                        }() +
                        " overlaps or precedes the previous "
                        "block of its function");
            cursor = placed.startAddr + placed.sizeBytes;
            funcEnd = std::max(funcEnd, cursor);
            if (placed.startAddr < textBase || cursor > textEnd)
                diags.error("layout.bounds", blockName(func, b),
                            "block lies outside the text segment");
        }
        extents.push_back(
            Extent{entry.startAddr, funcEnd, "func " + func.name});
    }
    std::sort(extents.begin(), extents.end(),
              [](const Extent &a, const Extent &b) {
                  return a.lo < b.lo;
              });
    for (size_t i = 1; i < extents.size(); ++i) {
        if (extents[i].lo < extents[i - 1].hi)
            diags.error("layout.monotone", extents[i].what,
                        "function body overlaps " +
                            extents[i - 1].what);
    }
    return diags.errorCount() == before;
}

} // namespace pico::verify
