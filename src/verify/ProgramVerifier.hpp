/**
 * @file
 * IR/CFG and text-layout invariant verifier (LLVM-verifier style).
 *
 * The paper's hierarchical evaluation is sound only on structurally
 * well-formed inputs: assumption 1 (identical basic-block traces
 * across processors) needs a consistent CFG, the dilation argument of
 * Lemma 1 assumes a monotone, non-overlapping, contiguous text
 * layout, and the trace modelers assume flow-conserving edge
 * profiles. These passes check exactly those properties and report
 * violations as Diagnostics instead of panicking.
 *
 * Rules (catalog in DESIGN.md §9):
 *  - ir.structure    program finalized, entry function exists,
 *                    functions/blocks indexed consistently
 *  - ir.edge-target  every CFG edge targets an existing block
 *  - ir.edge-prob    edge probabilities in [0,1], summing to 1 per
 *                    exiting block (finalize()'s tolerance)
 *  - ir.operands     latency >= 1, in-block deps refer to earlier
 *                    operations, memory ops reference a live stream
 *  - ir.flow         profile-count flow conservation: the entry
 *                    block's count equals the function's call count,
 *                    and no block is entered more often than its
 *                    predecessors were (exact, even for truncated
 *                    profiling runs)
 *  - ir.stream       data streams sized, placed at or above the data
 *                    base, non-overlapping
 *  - layout.monotone blocks of each function placed contiguously at
 *                    non-decreasing, non-overlapping addresses
 *  - layout.bounds   all placed blocks within [textBase,
 *                    textBase + textSize)
 *  - layout.align    function entry blocks aligned to the machine's
 *                    fetch-packet size
 */

#ifndef PICO_VERIFY_PROGRAM_VERIFIER_HPP
#define PICO_VERIFY_PROGRAM_VERIFIER_HPP

#include "ir/Program.hpp"
#include "linker/LinkedBinary.hpp"
#include "verify/Diagnostics.hpp"

namespace pico::verify
{

/**
 * Check IR/CFG invariants of a (finalized, optionally profiled)
 * program. Appends findings to `diags`.
 * @return true when no error-severity finding was added
 */
bool verifyProgram(const ir::Program &prog, Diagnostics &diags);

/**
 * Check the text layout of a linked binary against the program it
 * was produced from (monotone non-overlapping placement, bounds,
 * fetch-packet alignment of function entries).
 * @return true when no error-severity finding was added
 */
bool verifyLayout(const ir::Program &prog,
                  const linker::LinkedBinary &bin,
                  Diagnostics &diags);

} // namespace pico::verify

#endif // PICO_VERIFY_PROGRAM_VERIFIER_HPP
