#include "verify/ResultVerifier.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>

namespace pico::verify
{

namespace
{

/**
 * The evaluation-cache format, restated here from DESIGN.md rather
 * than shared with EvaluationCache.cpp: the round-trip check is only
 * meaningful against an independent reading of the format.
 */
constexpr const char *cacheFileHeader = "picoeval-evalcache-v3";
/** The previous version, still readable; flagged as a warning. */
constexpr const char *cacheFileHeaderV2 = "picoeval-evalcache-v2";

/** Parse one comma-separated value list; all values must be finite. */
bool
parseValueList(const std::string &text)
{
    if (text.empty())
        return false;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        std::string token =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (token.empty())
            return false;
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() ||
            !std::isfinite(v))
            return false;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

} // namespace

bool
verifyMissCount(double misses, double accesses,
                const std::string &what, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    if (!std::isfinite(misses) || !std::isfinite(accesses))
        diags.error("result.misses", what,
                    "non-finite miss or access count");
    else if (misses < 0.0)
        diags.error("result.misses", what,
                    "negative miss count " + std::to_string(misses));
    else if (misses > accesses)
        diags.error("result.misses", what,
                    "miss count " + std::to_string(misses) +
                        " exceeds access count " +
                        std::to_string(accesses));
    return diags.errorCount() == before;
}

bool
verifyWriteModel(double writes, double misses, double stores,
                 cache::WritePolicy policy, const std::string &what,
                 Diagnostics &diags)
{
    size_t before = diags.errorCount();
    if (!std::isfinite(writes) || !std::isfinite(misses) ||
        !std::isfinite(stores)) {
        diags.error("result.writes", what,
                    "non-finite write/miss/store count");
        return false;
    }
    if (writes < 0.0) {
        diags.error("result.writes", what,
                    "negative write traffic " +
                        std::to_string(writes));
        return false;
    }
    if (policy == cache::WritePolicy::WriteBack) {
        // A writeback rides a dirty eviction, every eviction rides a
        // miss, and a line is dirty only after a store since its
        // install — so writebacks are bounded by both counts.
        if (writes > misses)
            diags.error("result.writes", what,
                        "writeback count " + std::to_string(writes) +
                            " exceeds miss count " +
                            std::to_string(misses));
        if (writes > stores)
            diags.error("result.writes", what,
                        "writeback count " + std::to_string(writes) +
                            " exceeds store count " +
                            std::to_string(stores));
    } else if (writes != stores) {
        diags.error("result.writes", what,
                    "write-through traffic " +
                        std::to_string(writes) +
                        " differs from store count " +
                        std::to_string(stores));
    }
    return diags.errorCount() == before;
}

bool
verifyParetoPoints(const std::vector<dse::DesignPoint> &points,
                   const std::string &what, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    for (const auto &point : points) {
        if (point.id.empty())
            diags.error("result.pareto", what,
                        "member with an empty id");
        if (!std::isfinite(point.cost) ||
            !std::isfinite(point.time) || point.cost < 0.0 ||
            point.time < 0.0)
            diags.error("result.pareto", what + " member " + point.id,
                        "cost/time must be finite and non-negative");
    }
    for (size_t i = 0; i < points.size(); ++i) {
        for (size_t j = i + 1; j < points.size(); ++j) {
            if (points[i].id == points[j].id)
                diags.error("result.pareto", what,
                            "duplicate member id " + points[i].id);
            if (points[i].dominates(points[j]))
                diags.error("result.pareto", what,
                            "member " + points[i].id +
                                " dominates member " + points[j].id);
            else if (points[j].dominates(points[i]))
                diags.error("result.pareto", what,
                            "member " + points[j].id +
                                " dominates member " + points[i].id);
        }
    }
    return diags.errorCount() == before;
}

bool
verifyParetoSet(const dse::ParetoSet &set, const std::string &what,
                Diagnostics &diags)
{
    return verifyParetoPoints(set.points(), what, diags);
}

bool
verifyCacheFile(const std::string &path, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    std::string what = "cache file " + path;
    // The verifier is itself a checked reader: every record is
    // validated below. picoeval-lint: allow(raw-stream)
    std::ifstream in(path);
    if (!in) {
        diags.error("result.cachefile", what, "cannot open");
        return false;
    }
    std::string line;
    if (!std::getline(in, line) ||
        (line != cacheFileHeader && line != cacheFileHeaderV2)) {
        diags.error("result.cachefile", what,
                    "missing or wrong version header (expected '" +
                        std::string(cacheFileHeader) + "')");
        return false;
    }
    if (line == cacheFileHeaderV2)
        diags.warning("result.cachefile", what,
                      "legacy v2 header (pre policy-axis schema); "
                      "rewritten as v3 on the next save");
    std::string prevKey;
    uint64_t lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        std::string at = what + " line " + std::to_string(lineNo);
        if (line.empty()) {
            diags.error("result.cachefile", at, "empty record");
            continue;
        }
        auto bar = line.find('|');
        if (bar == std::string::npos || bar == 0) {
            diags.error("result.cachefile", at,
                        "malformed record (expected 'key|values')");
            continue;
        }
        std::string key = line.substr(0, bar);
        if (!parseValueList(line.substr(bar + 1)))
            diags.error("result.cachefile", at,
                        "values are not a comma-separated list of "
                        "finite numbers");
        if (!prevKey.empty() && key <= prevKey)
            diags.error("result.cachefile", at,
                        "keys are not strictly ascending ('" + key +
                            "' after '" + prevKey + "')");
        prevKey = std::move(key);
    }
    return diags.errorCount() == before;
}

bool
verifyWalkResult(const dse::ExplorationResult &result,
                 uint64_t design_count, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    std::string what = "exploration result";
    if (result.evaluatedDesigns > design_count)
        diags.error("result.walk", what,
                    "claims " +
                        std::to_string(result.evaluatedDesigns) +
                        " evaluated design(s) but the walk has "
                        "only " +
                        std::to_string(design_count));
    if (result.failures.empty() &&
        result.evaluatedDesigns != design_count)
        diags.error("result.walk", what,
                    "no failures recorded, yet only " +
                        std::to_string(result.evaluatedDesigns) +
                        " of " + std::to_string(design_count) +
                        " design(s) evaluated");
    if (result.dilations.size() != result.evaluatedDesigns)
        diags.error("result.walk", what,
                    std::to_string(result.dilations.size()) +
                        " dilation(s) for " +
                        std::to_string(result.evaluatedDesigns) +
                        " evaluated design(s)");
    if (result.processorCycles.size() != result.evaluatedDesigns)
        diags.error("result.walk", what,
                    std::to_string(result.processorCycles.size()) +
                        " cycle count(s) for " +
                        std::to_string(result.evaluatedDesigns) +
                        " evaluated design(s)");
    for (const auto &[machine, dilation] : result.dilations) {
        if (!std::isfinite(dilation) || dilation <= 0.0)
            diags.error("result.walk", "machine " + machine,
                        "dilation " + std::to_string(dilation) +
                            " is not finite and positive");
    }
    for (const auto &[machine, cycles] : result.processorCycles) {
        if (cycles == 0)
            diags.error("result.walk", "machine " + machine,
                        "zero processor cycles");
    }
    for (const auto &record : result.failures.entries()) {
        if (record.design.empty() || record.stage.empty())
            diags.error("result.walk", "failure log",
                        "record with an empty design or stage");
    }
    verifyParetoPoints(result.processors.points(),
                       "processor Pareto set", diags);
    verifyParetoPoints(result.systems.points(),
                       "system Pareto set", diags);
    return diags.errorCount() == before;
}

bool
verifyColumnarTrace(const trace::ColumnarTraceBuffer &buffer,
                    const std::string &what, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    const size_t blocks = buffer.blockCount();
    trace::BlockScratch scratch;
    uint64_t decoded = 0;
    uint64_t chain = trace::traceChecksumSeed;
    for (size_t b = 0; b < blocks; ++b) {
        try {
            trace::BlockView view = buffer.decodeBlock(b, scratch);
            if (b + 1 < blocks &&
                view.count != buffer.blockCapacity())
                diags.error("result.trace", what,
                            "non-tail block " + std::to_string(b) +
                                " holds " +
                                std::to_string(view.count) +
                                " of " +
                                std::to_string(
                                    buffer.blockCapacity()) +
                                " records");
            for (uint32_t i = 0; i < view.count; ++i)
                chain = trace::traceChecksumStep(
                    chain, view.kinds[i], view.addrs[i]);
            decoded += view.count;
        } catch (const std::exception &e) {
            diags.error("result.trace", what,
                        "block " + std::to_string(b) +
                            " failed to decode: " + e.what());
        }
    }
    if (decoded != buffer.size())
        diags.error("result.trace", what,
                    "decoded " + std::to_string(decoded) +
                        " record(s) but the buffer captured " +
                        std::to_string(buffer.size()));
    else if (chain != buffer.checksum())
        diags.error("result.trace", what,
                    "chained record checksum does not match the "
                    "capture-time checksum");
    return diags.errorCount() == before;
}

bool
verifyTraceFileV3(const std::string &path, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    try {
        if (trace::sniffTraceFileVersion(path) != 3) {
            diags.error("result.tracefile", path,
                        "not a trace format v3 file");
            return false;
        }
        // Lenient: corruption becomes findings, not exceptions.
        trace::ColumnarTraceReader reader(
            path, trace::TraceReadMode::Lenient);
        reader.replay([](const trace::Access &) {});
        const auto &s = reader.summary();
        if (!s.clean())
            diags.error("result.tracefile", path, s.describe());
    } catch (const std::exception &e) {
        diags.error("result.tracefile", path, e.what());
    }
    return diags.errorCount() == before;
}

} // namespace pico::verify
