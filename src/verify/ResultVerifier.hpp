/**
 * @file
 * Result invariant verifier: simulator outputs, Pareto sets, the
 * persistent evaluation-cache file, and whole-walk bookkeeping.
 *
 * Rules (catalog in DESIGN.md §9):
 *  - result.misses    miss counts are finite, non-negative, and never
 *                     exceed the access count they were counted over
 *  - result.writes    write traffic obeys the write model: finite and
 *                     non-negative; write-back traffic never exceeds
 *                     misses (every writeback rides an eviction) nor
 *                     stores (every written-back line was dirtied by
 *                     at least one store since install);
 *                     write-through traffic equals the store count
 *                     exactly
 *  - result.pareto    Pareto members have unique ids, finite
 *                     non-negative cost/time, and no member dominates
 *                     another (section 1's optimality definition)
 *  - result.cachefile a persisted evaluation-cache database parses
 *                     back cleanly: versioned header, well-formed
 *                     sorted unique `key|values` records, finite
 *                     values (parsed here independently of
 *                     EvaluationCache so the round-trip is checked
 *                     against the format, not the implementation)
 *  - result.walk      exploration bookkeeping: evaluated-design count
 *                     bounded by the walk size and consistent with
 *                     the failure log, per-machine dilations/cycles
 *                     present, finite and positive
 *  - result.trace     a captured columnar trace decodes block by
 *                     block: per-block checksums hold, block record
 *                     counts are full except the tail, the chained
 *                     whole-trace checksum matches, and the decoded
 *                     record count equals the captured size
 *  - result.tracefile a persisted trace format v3 file replays back
 *                     cleanly (sealed header, valid index, every
 *                     block decodes, file checksum matches)
 */

#ifndef PICO_VERIFY_RESULT_VERIFIER_HPP
#define PICO_VERIFY_RESULT_VERIFIER_HPP

#include <string>
#include <vector>

#include "cache/Policy.hpp"
#include "dse/Pareto.hpp"
#include "dse/Spacewalker.hpp"
#include "trace/ColumnarTrace.hpp"
#include "verify/Diagnostics.hpp"

namespace pico::verify
{

/**
 * Check one simulator outcome: `misses` counted over `accesses`.
 * @return true when no error-severity finding was added
 */
bool verifyMissCount(double misses, double accesses,
                     const std::string &what, Diagnostics &diags);

/**
 * Check one simulator's write traffic against the write model:
 * `writes` memory writes generated under `policy`, for a trace with
 * `stores` store references whose simulation reported `misses`
 * misses (the policy tag belongs in `what` so findings name the
 * design-space cell they came from).
 * @return true when no error-severity finding was added
 */
bool verifyWriteModel(double writes, double misses, double stores,
                      cache::WritePolicy policy,
                      const std::string &what, Diagnostics &diags);

/**
 * Check a claimed Pareto set for domination-freedom, id uniqueness
 * and metric sanity.
 * @return true when no error-severity finding was added
 */
bool verifyParetoPoints(const std::vector<dse::DesignPoint> &points,
                        const std::string &what, Diagnostics &diags);

/** ParetoSet convenience overload of verifyParetoPoints(). */
bool verifyParetoSet(const dse::ParetoSet &set,
                     const std::string &what, Diagnostics &diags);

/**
 * Re-parse a persisted evaluation-cache database and check the
 * format invariants (header, record shape, key ordering, finite
 * values).
 * @return true when no error-severity finding was added
 */
bool verifyCacheFile(const std::string &path, Diagnostics &diags);

/**
 * Check the bookkeeping of a finished exploration.
 * @param design_count machines the walk was asked to evaluate
 * @return true when no error-severity finding was added
 */
bool verifyWalkResult(const dse::ExplorationResult &result,
                      uint64_t design_count, Diagnostics &diags);

/**
 * Decode every block of a captured columnar trace and check the
 * encoding invariants: per-block checksums, full blocks except the
 * tail, record-count and whole-trace checksum consistency.
 * @return true when no error-severity finding was added
 */
bool verifyColumnarTrace(const trace::ColumnarTraceBuffer &buffer,
                         const std::string &what,
                         Diagnostics &diags);

/**
 * Replay a persisted trace format v3 file (leniently, so corruption
 * is reported as findings rather than thrown) and check that it is
 * clean: sealed header, valid index, every block decodes, record
 * count and file checksum match.
 * @return true when no error-severity finding was added
 */
bool verifyTraceFileV3(const std::string &path, Diagnostics &diags);

} // namespace pico::verify

#endif // PICO_VERIFY_RESULT_VERIFIER_HPP
