/**
 * @file
 * Design-space invariant verifier: cache geometry, subspace domains,
 * hierarchy inclusion, AHH model parameter domains.
 *
 * Rules (catalog in DESIGN.md §9):
 *  - cache.geometry      sets and line size are powers of two, line
 *                        size within the simulators' covered range,
 *                        associativity and ports positive and sane
 *  - space.domain        every dimension of a CacheSpace is
 *                        non-empty and at least one combination is
 *                        feasible
 *  - hierarchy.inclusion the unified L2 can contain each L1
 *                        (size and line length, section 3.1) and
 *                        latencies are positive
 *  - ahh.domain          extracted trace parameters lie in the
 *                        domains the run model (eqs. 4.4/4.5, used
 *                        by eqs. 4.12–4.15) is defined on; measured
 *                        data that violates the *model assumption*
 *                        lav >= 1 + p1 (which makes p2 negative) is
 *                        reported as a warning, not an error
 */

#ifndef PICO_VERIFY_DESIGN_VERIFIER_HPP
#define PICO_VERIFY_DESIGN_VERIFIER_HPP

#include <string>

#include "cache/CacheConfig.hpp"
#include "cache/Hierarchy.hpp"
#include "core/TraceModel.hpp"
#include "dse/CacheSpace.hpp"
#include "verify/Diagnostics.hpp"

namespace pico::verify
{

/**
 * Check one cache configuration's geometry.
 * @param what label for findings (e.g. "I$16KB/2way/32B")
 * @return true when no error-severity finding was added
 */
bool verifyCacheConfig(const cache::CacheConfig &config,
                       const std::string &what, Diagnostics &diags);

/**
 * Check a cache subspace specification: non-empty dimensions, sane
 * values, and at least one feasible cross-product combination.
 * @return true when no error-severity finding was added
 */
bool verifyCacheSpace(const dse::CacheSpace &space,
                      const std::string &what, Diagnostics &diags);

/**
 * Check a hierarchy configuration: per-level geometry, inclusion
 * feasibility (L1 ⊆ L2), positive latencies.
 * @return true when no error-severity finding was added
 */
bool verifyHierarchy(const cache::HierarchyConfig &config,
                     Diagnostics &diags);

/**
 * Check extracted AHH parameters against the run model's domain.
 * @param granule_refs references per granule the parameters were
 *        extracted with (u1 cannot exceed it)
 * @return true when no error-severity finding was added
 */
bool verifyAhhParams(const core::ComponentParams &params,
                     uint64_t granule_refs, const std::string &what,
                     Diagnostics &diags);

} // namespace pico::verify

#endif // PICO_VERIFY_DESIGN_VERIFIER_HPP
