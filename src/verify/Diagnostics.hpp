/**
 * @file
 * Structured diagnostics for the static verification layer.
 *
 * Verifier passes (ProgramVerifier, DesignVerifier, ResultVerifier)
 * never panic on a violated invariant: a walk that is already running
 * should finish and *report*, exactly as an LLVM verifier pass
 * reports a broken module instead of crashing the compiler. Each
 * finding is recorded as a Diagnostic — severity, stable rule id,
 * offending object, message — and callers decide what to do with the
 * list (fail a test, warn in a walk, gate a CI job).
 *
 * Rule ids are stable dotted names ("ir.flow", "cache.geometry",
 * "result.pareto", ...) so tests can assert that a specific check
 * fired and release-notes can reference individual rules. The full
 * catalog lives in DESIGN.md §9.
 *
 * Severities:
 *  - Error: a structural invariant is violated; results derived from
 *    this object cannot be trusted.
 *  - Warning: a model *assumption* does not hold for the measured
 *    data (e.g. the AHH run-model domain, eq. 4.4) — results are
 *    well-defined but extrapolations may be inaccurate.
 */

#ifndef PICO_VERIFY_DIAGNOSTICS_HPP
#define PICO_VERIFY_DIAGNOSTICS_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace pico::verify
{

/** Finding severity; only errors make a Diagnostics list unclean. */
enum class Severity
{
    Warning,
    Error,
};

/** Printable name of a severity. */
const char *toString(Severity severity);

/** One verifier finding. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Stable dotted rule id, e.g. "ir.flow". */
    std::string rule;
    /** The object the finding is about, e.g. "func main block 3". */
    std::string object;
    std::string message;

    /** "error: ir.flow: func main block 3: ...". */
    std::string format() const;
};

/** Accumulated findings of one or more verifier passes. */
class Diagnostics
{
  public:
    /** Record an error-severity finding. */
    void error(std::string rule, std::string object,
               std::string message);

    /** Record a warning-severity finding. */
    void warning(std::string rule, std::string object,
                 std::string message);

    /** Splice another list's findings onto this one. */
    void append(const Diagnostics &other);

    const std::vector<Diagnostic> &entries() const
    {
        return entries_;
    }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Error-severity findings. */
    size_t errorCount() const { return errors_; }
    /** Warning-severity findings. */
    size_t warningCount() const
    {
        return entries_.size() - errors_;
    }

    /** True when no error-severity finding was recorded. */
    bool clean() const { return errors_ == 0; }

    /** Findings recorded under one rule id. */
    size_t count(const std::string &rule) const;

    /** True when any finding carries the rule id. */
    bool has(const std::string &rule) const
    {
        return count(rule) > 0;
    }

    /** One formatted line per finding ("" when empty). */
    std::string report() const;

  private:
    std::vector<Diagnostic> entries_;
    size_t errors_ = 0;
};

} // namespace pico::verify

#endif // PICO_VERIFY_DIAGNOSTICS_HPP
