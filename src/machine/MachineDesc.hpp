/**
 * @file
 * Parameterized VLIW machine description (mdes).
 *
 * A machine is named by its functional-unit mix, e.g. "6332" is six
 * integer ALUs, three floating-point units, three memory ports and two
 * branch units — the naming convention the paper uses. The mdes also
 * carries register-file sizes and the predication/speculation switches
 * that define the trace-equivalence classes of section 4.1.
 */

#ifndef PICO_MACHINE_MACHINE_DESC_HPP
#define PICO_MACHINE_MACHINE_DESC_HPP

#include <array>
#include <cstdint>
#include <string>

#include "ir/Operation.hpp"

namespace pico::machine
{

/** Number of FU classes (int, float, memory, branch). */
constexpr unsigned numOpClasses = 4;

/**
 * Description of one VLIW processor in the design space.
 */
struct MachineDesc
{
    /** FU counts indexed by ir::OpClass. */
    std::array<uint8_t, numOpClasses> fuCount = {1, 1, 1, 1};
    /** Integer register file size (power of two). */
    uint16_t intRegs = 32;
    /** Floating-point register file size (power of two). */
    uint16_t fpRegs = 32;
    /** Predicate register file size; 0 disables predication. */
    uint16_t predRegs = 0;
    /** Whether the compiler may speculate loads on this machine. */
    bool speculation = false;

    /** FU count available for an operation class. */
    unsigned
    slots(ir::OpClass cls) const
    {
        return fuCount[static_cast<unsigned>(cls)];
    }

    /** Maximum operations issued per cycle. */
    unsigned
    issueWidth() const
    {
        unsigned w = 0;
        for (auto c : fuCount)
            w += c;
        return w;
    }

    /** Canonical "6332"-style name. */
    std::string name() const;

    /**
     * Construct a machine from a "6332"-style digit string. Register
     * files and speculation scale with issue width: wider machines get
     * larger register files (more live values in flight) and are
     * allowed to speculate, exactly the coupling the paper describes.
     */
    static MachineDesc fromName(const std::string &digits);

    /**
     * Relative silicon cost of the processor: functional units plus
     * register files whose port count grows with issue width.
     */
    double cost() const;

    /**
     * Two machines are trace-equivalent when they share predication
     * and speculation settings (section 4.1: one reference processor
     * per unique combination of those features).
     */
    bool
    traceEquivalent(const MachineDesc &other) const
    {
        return speculation == other.speculation &&
               (predRegs != 0) == (other.predRegs != 0);
    }
};

/** The paper's reference processor: one FU of each class. */
MachineDesc referenceMachine();

/** The paper's target processors: 2111, 3221, 4221, 6332. */
std::array<MachineDesc, 4> paperTargetMachines();

} // namespace pico::machine

#endif // PICO_MACHINE_MACHINE_DESC_HPP
