#include "machine/MachineDesc.hpp"

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::machine
{

std::string
MachineDesc::name() const
{
    std::string s;
    for (auto c : fuCount)
        s += static_cast<char>('0' + c);
    if (predRegs > 0)
        s += 'p';
    return s;
}

MachineDesc
MachineDesc::fromName(const std::string &digits)
{
    // An optional trailing 'p' selects a predicated machine.
    std::string body = digits;
    bool predicated = false;
    if (!body.empty() && body.back() == 'p') {
        predicated = true;
        body.pop_back();
    }
    fatalIf(body.size() != numOpClasses,
            "machine name must have ", numOpClasses, " digits: '",
            digits, "'");
    MachineDesc m;
    for (unsigned i = 0; i < numOpClasses; ++i) {
        char c = body[i];
        fatalIf(c < '0' || c > '9', "bad machine name '", digits, "'");
        m.fuCount[i] = static_cast<uint8_t>(c - '0');
        fatalIf(m.fuCount[i] == 0,
                "machine '", digits, "' has a zero FU count");
    }

    // Register files grow with issue width: a machine that issues more
    // operations per cycle keeps more values live. Round the scaled
    // size to a power of two, which is what the operand-field encoder
    // expects.
    unsigned width = m.issueWidth();
    auto scaled = [width](unsigned base) -> uint16_t {
        unsigned regs = base;
        if (width > 4)
            regs = base * ((width + 3) / 4);
        return static_cast<uint16_t>(
            uint64_t{1} << log2Ceil(regs));
    };
    m.intRegs = scaled(32);
    m.fpRegs = scaled(32);
    m.predRegs = predicated ? 32 : 0;
    // All machines in the default space support speculation (the
    // paper requires Pref and Pi to share speculation/predication
    // features); the *compiler* speculates more aggressively on wider
    // machines, which is where the trace differences come from.
    m.speculation = true;
    return m;
}

double
MachineDesc::cost() const
{
    // Relative areas per FU class: float units are the largest,
    // memory ports next, then integer ALUs and branch units.
    static constexpr double fuArea[numOpClasses] = {1.0, 3.0, 2.0, 0.7};
    double area = 0.0;
    for (unsigned i = 0; i < numOpClasses; ++i)
        area += fuArea[i] * fuCount[i];

    // Register file area scales with entries x ports^2 (wire-dominated
    // multi-ported arrays); ports track issue width.
    double ports = static_cast<double>(issueWidth());
    area += (intRegs + fpRegs) / 32.0 * 0.5 * (ports * ports) / 16.0;

    // Instruction fetch/decode grows with width.
    area += 0.3 * issueWidth();
    return area;
}

MachineDesc
referenceMachine()
{
    return MachineDesc::fromName("1111");
}

std::array<MachineDesc, 4>
paperTargetMachines()
{
    return {
        MachineDesc::fromName("2111"),
        MachineDesc::fromName("3221"),
        MachineDesc::fromName("4221"),
        MachineDesc::fromName("6332"),
    };
}

} // namespace pico::machine
