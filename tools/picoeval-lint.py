#!/usr/bin/env python3
"""Repo lint for picoeval's determinism and concurrency contracts.

Checks C++ sources under src/ for constructions the project bans:

  wallclock-rng  rand()/srand()/std::random_device/time()/
                 system_clock in library code. Results must be a pure
                 function of program seeds; wall-clock or
                 nondeterministic entropy in a result path breaks the
                 bit-identity contract of the parallel walk.
  raw-mutex      std::mutex / lock_guard / unique_lock / scoped_lock
                 outside support/ThreadAnnotations.hpp. All locking
                 goes through the annotated support::Mutex /
                 support::MutexLock wrappers so Clang's
                 -Wthread-safety analysis sees every acquisition.
  raw-stream     std::ifstream / std::fstream outside the checked
                 readers (TraceFile, EvaluationCache::load,
                 FaultInjection). Ad-hoc file reads skip the
                 corruption quarantine the fault-tolerance layer
                 guarantees.
  raw-output     std::cout / std::cerr / printf family outside
                 support/Logging.cpp. Library code reports through
                 the leveled logging sink, which is filterable and
                 emits one atomic write per message.
  unbounded-queue  std::queue / std::deque in src/server. Every queue
                 in the serving layer is admitted work the server has
                 promised to do; an unbounded one turns overload into
                 unbounded memory and latency. Use
                 support::BoundedQueue (capacity + shed watermark).
  raw-span       TimedSpan in src/server. A server span opened
                 without a TraceContext is invisible to dump-trace
                 and unattributable in the Chrome trace; the serving
                 layer opens support::RequestSpan, which installs the
                 request's context around the span.
  raw-sleep      direct sleep calls (sleep_for/usleep/sleep) in
                 src/server. Fixed-delay retry loops synchronize into
                 retry storms; pacing goes through support::Backoff
                 (full-jitter, seeded) or support::sleepForMs via it.
  nondet-iteration  iteration over a std::unordered_map/unordered_set
                 inside a function that writes serialized output
                 (reports, cache files, protocol frames). Hash order
                 is libstdc++-version- and salt-dependent; serialized
                 bytes must be a pure function of the *contents*, so
                 the visit must feed a sort (audited sites carry an
                 allow). Implemented as a cross-file two-pass check:
                 unordered container identifiers are collected from
                 every scanned file (members are declared in headers,
                 iterated in .cpps), then any function body that both
                 iterates one and touches a serialization sink is
                 flagged.

Rules with `only_dirs` apply only to files under those directories.

Comments and string literals are stripped before matching. A finding
is suppressed when its own line — or the line directly above it —
contains `picoeval-lint: allow(<rule>)` in the source text.

Usage: picoeval-lint.py [--list-rules] [PATH...]
Exits 1 when any violation is found.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = [
    {
        "name": "wallclock-rng",
        "pattern": re.compile(
            r"\brand\s*\(|\bsrand\s*\(|std::random_device"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|system_clock"
        ),
        "allow_files": [],
        "message": "nondeterministic entropy or wall-clock in library "
                   "code (results must be a pure function of seeds)",
    },
    {
        "name": "raw-mutex",
        "pattern": re.compile(
            r"std::(?:recursive_|shared_|timed_)?mutex\b"
            r"|std::lock_guard\b|std::unique_lock\b"
            r"|std::scoped_lock\b"
        ),
        "allow_files": ["src/support/ThreadAnnotations.hpp"],
        "message": "raw standard mutex/lock outside the annotated "
                   "support::Mutex/MutexLock wrappers "
                   "(invisible to -Wthread-safety)",
    },
    {
        "name": "raw-stream",
        "pattern": re.compile(r"std::ifstream\b|std::fstream\b"),
        "allow_files": [
            "src/trace/TraceFile.hpp",
            "src/trace/TraceFile.cpp",
            "src/dse/EvaluationCache.cpp",
            "src/support/FaultInjection.cpp",
        ],
        "message": "file read outside the checked readers (must "
                   "validate/quarantine corrupt input)",
    },
    {
        "name": "raw-output",
        "pattern": re.compile(
            r"std::cout\b|std::cerr\b|std::clog\b"
            r"|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\("
        ),
        "allow_files": ["src/support/Logging.cpp"],
        "message": "direct terminal output in library code (route "
                   "through the leveled logging sink)",
    },
    {
        "name": "unbounded-queue",
        "pattern": re.compile(r"std::queue\b|std::deque\b"),
        "allow_files": [],
        "only_dirs": ["src/server"],
        "message": "unbounded queue in the serving layer (use "
                   "support::BoundedQueue — admission control is "
                   "not optional)",
    },
    {
        "name": "raw-span",
        "pattern": re.compile(r"\bTimedSpan\b"),
        "allow_files": [],
        "only_dirs": ["src/server"],
        "message": "raw TimedSpan in the serving layer (a span "
                   "without a TraceContext loses its request "
                   "identity; open a support::RequestSpan instead)",
    },
    {
        "name": "raw-sleep",
        # The lookbehind keeps `backoff_.sleep(...)` (the sanctioned
        # helper) legal while catching bare sleep()/::sleep().
        "pattern": re.compile(
            r"sleep_for\s*\(|sleep_until\s*\(|\busleep\s*\("
            r"|\bnanosleep\s*\(|(?<![.\w])sleep\s*\("
        ),
        "allow_files": [],
        "only_dirs": ["src/server"],
        "message": "raw sleep in the serving layer (fixed-delay "
                   "retries synchronize into storms; pace through "
                   "support::Backoff)",
    },
]

ALLOW_RE = re.compile(r"picoeval-lint:\s*allow\(([a-z-]+)\)")

# --- nondet-iteration (two-pass, cross-file) ---------------------------

NONDET_RULE = {
    "name": "nondet-iteration",
    "message": "iteration over an unordered container in a "
               "serializing function (hash order is not stable; "
               "sort before writing — audited sites carry an allow)",
}

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")

# A function body "serializes" when it touches one of these sinks.
SERIALIZE_SINK_RE = re.compile(
    r"\bostream\b|\bofstream\b|\bostringstream\b|\bwriteJson\b"
    r"|\btoJson\b|\bsnprintf\b|\bjsonEscape\b|\bout\s*<<"
)


def unordered_identifiers(stripped_text):
    """Identifiers declared as std::unordered_map/set (angle brackets
    matched manually — nested template args defeat a plain regex)."""
    idents = set()
    for m in UNORDERED_DECL_RE.finditer(stripped_text):
        i = m.end()  # just past '<'
        depth = 1
        n = len(stripped_text)
        while i < n and depth > 0:
            if stripped_text[i] == "<":
                depth += 1
            elif stripped_text[i] == ">":
                depth -= 1
            i += 1
        ident = re.match(r"\s*(\w+)", stripped_text[i:])
        if ident:
            idents.add(ident.group(1))
    return idents


def iteration_re(idents):
    names = "|".join(sorted(re.escape(i) for i in idents))
    return re.compile(
        r"for\s*\([^;()]*:[^()]*\b(?:" + names + r")\s*\)"
        r"|\b(?:" + names + r")\s*(?:\.|->)\s*begin\s*\(")


def brace_blocks(stripped_text):
    """All balanced-brace regions as (open_offset, close_offset)
    pairs, from one stack pass over the stripped text."""
    blocks = []
    stack = []
    for i, ch in enumerate(stripped_text):
        if ch == "{":
            stack.append(i)
        elif ch == "}" and stack:
            blocks.append((stack.pop(), i))
    return blocks


def nondet_findings(rel, raw_lines, stripped_text, idents):
    """Flag iterations over an unordered container whose enclosing
    function also serializes. The "function" is approximated as the
    innermost enclosing brace blocks up to ~a function's size: a
    namespace or class block spans the whole file and must not donate
    its sinks to every loop inside it."""
    if not idents:
        return []
    it_re = iteration_re(idents)
    blocks = brace_blocks(stripped_text)
    findings = []
    for m in it_re.finditer(stripped_text):
        pos = m.start()
        enclosing = sorted((b for b in blocks if b[0] < pos < b[1]),
                           key=lambda b: b[1] - b[0])
        serializes = False
        for open_off, close_off in enclosing:
            block = stripped_text[open_off:close_off + 1]
            if block.count("\n") > 120:
                break  # namespace/class scale, not a function
            if SERIALIZE_SINK_RE.search(block):
                serializes = True
                break
        if not serializes:
            continue
        lineno = stripped_text.count("\n", 0, pos) + 1
        src = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        above = raw_lines[lineno - 2] if lineno >= 2 else ""
        allow = ALLOW_RE.search(src) or ALLOW_RE.search(above)
        if allow and allow.group(1) == NONDET_RULE["name"]:
            continue
        findings.append((rel, lineno, NONDET_RULE["name"],
                         NONDET_RULE["message"]))
    return findings


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, keeping the line
    structure (and therefore line numbers) intact."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def lint_file(path, repo_root):
    rel = path.relative_to(repo_root).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    stripped_lines = strip_comments_and_strings(raw).splitlines()
    findings = []
    for rule in RULES:
        if rel in rule["allow_files"]:
            continue
        only_dirs = rule.get("only_dirs")
        if only_dirs and not any(
                rel.startswith(d + "/") for d in only_dirs):
            continue
        for lineno, line in enumerate(stripped_lines, 1):
            if not rule["pattern"].search(line):
                continue
            src = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            above = raw_lines[lineno - 2] if lineno >= 2 else ""
            allow = (ALLOW_RE.search(src)
                     or ALLOW_RE.search(above))
            if allow and allow.group(1) == rule["name"]:
                continue
            findings.append(
                (rel, lineno, rule["name"], rule["message"]))
    return findings


def main():
    parser = argparse.ArgumentParser(
        description="picoeval repo lint (see module docstring)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES + [NONDET_RULE]:
            print(f"{rule['name']}: {rule['message']}")
        return 0

    repo_root = Path(__file__).resolve().parent.parent
    roots = ([Path(p) for p in args.paths] if args.paths
             else [repo_root / "src"])
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))
        elif root.is_file():
            files.append(root)
        else:
            print(f"picoeval-lint: no such path: {root}",
                  file=sys.stderr)
            return 2

    findings = []
    # Two passes for nondet-iteration: container members are declared
    # in headers but iterated in .cpps, so the identifier set must be
    # collected across every scanned file first.
    stripped_cache = {}
    idents = set()
    ordered = sorted(set(f.resolve() for f in files))
    for path in ordered:
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(raw)
        stripped_cache[path] = (raw.splitlines(), stripped)
        idents.update(unordered_identifiers(stripped))
    for path in ordered:
        findings.extend(lint_file(path, repo_root))
        rel = path.relative_to(repo_root).as_posix()
        raw_lines, stripped = stripped_cache[path]
        findings.extend(
            nondet_findings(rel, raw_lines, stripped, idents))

    findings.sort()
    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: {rule}: {message}")
    if findings:
        print(f"picoeval-lint: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"picoeval-lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
