#!/usr/bin/env python3
"""Static lock-order analysis for picoeval (stdlib only).

Every mutex in src/support, src/dse and src/server declares a
compile-time name and an integer rank from the table in
src/support/LockRank.hpp (`Mutex m{"evalcache.shard",
rank::kCacheShard}`). The discipline: a thread only acquires a mutex
whose rank is strictly greater than every rank it already holds, so
acquisition order is a total order and deadlock is impossible by
construction.

This tool proves the *source* obeys the discipline:

  1. parses the rank table from LockRank.hpp;
  2. parses every ranked Mutex declaration in the covered directories
     (member identifiers are globally unique by convention, so an
     acquisition expression like `shard.shardMutex` resolves by its
     trailing identifier);
  3. lexically tracks `MutexLock` scopes (brace depth) through every
     file, collecting the nesting edges `held -> acquired`, including
     one level of interprocedural nesting via PICO_REQUIRES
     annotations (a function annotated PICO_REQUIRES(flushMutex_)
     scans with that lock held);
  4. fails on:
       - `undeclared-mutex`: an unranked Mutex declaration in a
         covered directory, or a MutexLock on an identifier no
         declaration ranks;
       - `rank-inversion`: an edge whose acquired rank is <= a held
         rank;
       - `cycle`: any cycle in the lock-name graph (caught even if
         the rank table itself were wrong);
       - `held-across-call`: a MutexLock scope containing a
         `.submit(` / blocking `.pop(` / `parallelFor(` call — locks
         must never be held across a handoff that can block on
         another thread's progress;
  5. emits the graph as lockgraph.json and DOT for review/CI
     artifacts.

Known limitation: nesting created purely by unannotated cross-function
calls is invisible to the lexical scan; the Debug runtime rank checker
(support/LockRank.cpp) is the dynamic backstop for those, exercised
across schedules by tests/schedule_test.cpp.

Usage: picoeval-lockcheck.py [--json PATH] [--dot PATH] [--self-test]
Exits 1 when any violation is found (2 on self-test failure).
"""

import argparse
import json
import re
import sys
import tempfile
from pathlib import Path

COVERED_DIRS = ["src/support", "src/dse", "src/server"]

# The wrapper and the checker declare/handle raw identifiers that are
# not program locks.
EXCLUDED_FILES = {
    "src/support/ThreadAnnotations.hpp",
    "src/support/LockRank.hpp",
    "src/support/LockRank.cpp",
}

RANK_RE = re.compile(r"constexpr\s+int\s+(k\w+)\s*=\s*(\d+)\s*;")

# `mutable support::Mutex shardMutex{"evalcache.shard",
#  support::rank::kCacheShard};` — possibly split across lines.
RANKED_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*\{\s*\"([^\"]+)\"\s*,\s*(?:\w+\s*::\s*)*"
    r"rank\s*::\s*(k\w+)\s*\}",
    re.DOTALL,
)

# `Mutex name_;` or `Mutex name_{};` — a declaration without a rank.
UNRANKED_DECL_RE = re.compile(r"\bMutex\s+(\w+)\s*(?:;|\{\s*\})")

ACQUIRE_RE = re.compile(r"\bMutexLock\s+\w+\s*\(([^()]*)\)")

# One level of interprocedural awareness: PICO_REQUIRES on a method
# declaration means its definition body runs with that lock held.
REQUIRES_RE = re.compile(
    r"\b(\w+)\s*\([^;{]*?\)\s*(?:const\s*)?PICO_REQUIRES\s*\(([^)]*)\)"
)

DEFINITION_RE = re.compile(r"^\s*(?:[\w:<>,&*~\s]+?)?\b\w+\s*::\s*(\w+)\s*\(")

HANDOFF_RE = re.compile(
    r"(?:\.|->)\s*submit\s*\(|(?:\.|->)\s*pop\s*\(|\bparallelFor\s*\("
)


def strip_comments(text, strings_too):
    """Blank comments (and optionally string/char literals), keeping
    line structure and byte offsets intact."""
    out = []
    i = 0
    n = len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"' if not strings_too else " ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'" if not strings_too else " ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            out.append("\n" if c == "\n" else " ")
            if c == "\n":
                state = "code"
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("\\x" if not strings_too else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote if not strings_too else " ")
            else:
                keep = c if (not strings_too and c != "\n") else (
                    "\n" if c == "\n" else " ")
                out.append(keep)
        i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class Analysis:
    def __init__(self, ranks):
        self.ranks = ranks  # kName -> int
        self.mutexes = {}   # identifier -> (lockname, rankname, file, line)
        self.edges = {}     # (from_lock, to_lock) -> (file, line)
        self.violations = []  # (kind, file, line, message)

    def violation(self, kind, rel, line, message):
        self.violations.append((kind, rel, line, message))

    def rank_of_id(self, ident):
        lockname, rankname, _, _ = self.mutexes[ident]
        return lockname, self.ranks.get(rankname)

    def collect_declarations(self, rel, text):
        no_comments = strip_comments(text, strings_too=False)
        ranked_spans = []
        for m in RANKED_DECL_RE.finditer(no_comments):
            ident, lockname, rankname = m.groups()
            ranked_spans.append((m.start(), m.end()))
            line = line_of(no_comments, m.start())
            if rankname not in self.ranks:
                self.violation(
                    "undeclared-mutex", rel, line,
                    f"mutex '{ident}' uses unknown rank "
                    f"rank::{rankname} (not in LockRank.hpp)")
                continue
            if ident in self.mutexes:
                other = self.mutexes[ident]
                if (other[0], other[1]) != (lockname, rankname):
                    self.violation(
                        "undeclared-mutex", rel, line,
                        f"mutex identifier '{ident}' redeclared with "
                        f"a different name/rank (first at "
                        f"{other[2]}:{other[3]}); identifiers must "
                        "be globally unique")
                continue
            self.mutexes[ident] = (lockname, rankname, rel, line)
        for m in UNRANKED_DECL_RE.finditer(no_comments):
            if any(s <= m.start() < e for s, e in ranked_spans):
                continue
            ident = m.group(1)
            line = line_of(no_comments, m.start())
            self.violation(
                "undeclared-mutex", rel, line,
                f"mutex '{ident}' has no name/rank — declare it "
                "Mutex " + ident + "{\"<component>.<role>\", "
                "rank::k...} (see LockRank.hpp)")

    def collect_requires(self, text, requires_map):
        no_comments = strip_comments(text, strings_too=True)
        for m in REQUIRES_RE.finditer(no_comments):
            func, args = m.groups()
            # `PICO_REQUIRES(!m)` is a *negative* capability — the
            # caller must NOT hold m — so only positive arguments
            # mean "definition body runs with this lock held".
            ids = [a.lstrip("&").strip() for a in
                   (arg.strip() for arg in args.split(","))
                   if a.strip() and not a.strip().startswith("!")]
            ids = [i for i in ids if re.fullmatch(r"\w+", i)]
            if ids:
                requires_map.setdefault(func, set()).update(ids)

    def scan_acquisitions(self, rel, text, requires_map):
        code = strip_comments(text, strings_too=True)
        acquisitions = {m.start(): m for m in ACQUIRE_RE.finditer(code)}
        handoffs = {m.start(): m for m in HANDOFF_RE.finditer(code)}
        # Definitions of PICO_REQUIRES-annotated methods run with the
        # required locks held for their whole body.
        def_spans = []  # (start_offset, func)
        for lm in DEFINITION_RE.finditer(code):
            pass  # per-line handling below is simpler
        line_starts = [0]
        for i, ch in enumerate(code):
            if ch == "\n":
                line_starts.append(i + 1)
        for ls in line_starts:
            le = code.find("\n", ls)
            le = len(code) if le < 0 else le
            m = DEFINITION_RE.match(code[ls:le])
            if m and m.group(1) in requires_map:
                def_spans.append((ls, m.group(1)))

        held = []  # list of dicts {ident/lock, rank, depth, virtual}
        depth = 0
        events = sorted(
            [(off, "acq", m) for off, m in acquisitions.items()]
            + [(off, "call", m) for off, m in handoffs.items()]
            + [(off, "def", f) for off, f in def_spans])
        ev_idx = 0
        for i, ch in enumerate(code):
            while ev_idx < len(events) and events[ev_idx][0] == i:
                off, kind, payload = events[ev_idx]
                ev_idx += 1
                line = line_of(code, off)
                if kind == "def":
                    # Body not opened yet; bind to depth+1 so the
                    # requirement drops when the body closes.
                    for ident in requires_map[payload]:
                        if ident not in self.mutexes:
                            continue
                        lockname, rank = self.rank_of_id(ident)
                        held.append({
                            "lock": lockname, "rank": rank,
                            "depth": depth + 1, "line": line,
                            "virtual": True,
                        })
                elif kind == "acq":
                    expr = payload.group(1)
                    ids = re.findall(r"\w+", expr)
                    ident = ids[-1] if ids else ""
                    if ident not in self.mutexes:
                        self.violation(
                            "undeclared-mutex", rel, line,
                            f"MutexLock on '{expr.strip()}': no "
                            f"ranked declaration found for "
                            f"'{ident}'")
                        continue
                    lockname, rank = self.rank_of_id(ident)
                    for h in held:
                        if h["lock"] == lockname:
                            continue  # same lock (e.g. per-item loop)
                        key = (h["lock"], lockname)
                        self.edges.setdefault(key, (rel, line))
                        if rank is not None and h["rank"] is not None \
                                and rank <= h["rank"]:
                            self.violation(
                                "rank-inversion", rel, line,
                                f"acquires '{lockname}' (rank {rank})"
                                f" while holding '{h['lock']}' (rank "
                                f"{h['rank']})")
                    held.append({
                        "lock": lockname, "rank": rank,
                        "depth": depth, "line": line,
                        "virtual": False,
                    })
                elif kind == "call":
                    real = [h for h in held if not h["virtual"]]
                    if real:
                        names = ", ".join(
                            f"'{h['lock']}'" for h in real)
                        self.violation(
                            "held-across-call", rel, line,
                            f"{names} held across "
                            f"'{payload.group(0).strip()}...' — a "
                            "lock must not be held across a "
                            "submit/blocking-queue handoff")
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                held = [h for h in held if h["depth"] <= depth]

    def check_cycles(self):
        graph = {}
        for (a, b) in self.edges:
            graph.setdefault(a, set()).add(b)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {}
        stack_path = []

        def dfs(node):
            color[node] = GRAY
            stack_path.append(node)
            for nxt in sorted(graph.get(node, ())):
                c = color.get(nxt, WHITE)
                if c == GRAY:
                    cyc = stack_path[stack_path.index(nxt):] + [nxt]
                    rel, line = self.edges[(node, nxt)]
                    self.violation(
                        "cycle", rel, line,
                        "lock-order cycle: " + " -> ".join(cyc))
                elif c == WHITE:
                    dfs(nxt)
            stack_path.pop()
            color[node] = BLACK

        for node in sorted(graph):
            if color.get(node, WHITE) == WHITE:
                dfs(node)


def parse_ranks(lockrank_path):
    text = lockrank_path.read_text(encoding="utf-8")
    ranks = dict((m.group(1), int(m.group(2)))
                 for m in RANK_RE.finditer(text))
    if not ranks:
        print(f"picoeval-lockcheck: no ranks found in {lockrank_path}",
              file=sys.stderr)
        sys.exit(2)
    return ranks


def run_analysis(repo_root, files=None):
    ranks = parse_ranks(repo_root / "src/support/LockRank.hpp")
    analysis = Analysis(ranks)
    if files is None:
        files = []
        for d in COVERED_DIRS:
            root = repo_root / d
            files.extend(sorted(root.rglob("*.hpp")))
            files.extend(sorted(root.rglob("*.cpp")))
    texts = {}
    requires_map = {}
    for path in files:
        rel = path.relative_to(repo_root).as_posix()
        if rel in EXCLUDED_FILES:
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        texts[rel] = text
        analysis.collect_declarations(rel, text)
        analysis.collect_requires(text, requires_map)
    for rel, text in texts.items():
        analysis.scan_acquisitions(rel, text, requires_map)
    analysis.check_cycles()
    return analysis


def write_json(analysis, path):
    mutexes = {}
    for ident, (lockname, rankname, rel, line) in sorted(
            analysis.mutexes.items()):
        entry = mutexes.setdefault(lockname, {
            "rank": analysis.ranks.get(rankname),
            "rank_name": rankname,
            "identifiers": [],
        })
        entry["identifiers"].append(
            {"id": ident, "file": rel, "line": line})
    doc = {
        "schema": "picoeval-lockgraph-v1",
        "ranks": analysis.ranks,
        "mutexes": mutexes,
        "edges": [
            {"from": a, "to": b, "file": rel, "line": line}
            for (a, b), (rel, line) in sorted(analysis.edges.items())
        ],
        "violations": [
            {"kind": kind, "file": rel, "line": line, "message": msg}
            for kind, rel, line, msg in analysis.violations
        ],
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def write_dot(analysis, path):
    lines = ["digraph lockgraph {", "  rankdir=LR;"]
    names = {}
    for ident, (lockname, rankname, _, _) in analysis.mutexes.items():
        names[lockname] = analysis.ranks.get(rankname)
    for lockname in sorted(names):
        rank = names[lockname]
        lines.append(
            f'  "{lockname}" [label="{lockname}\\nrank {rank}"];')
    for (a, b), (rel, line) in sorted(analysis.edges.items()):
        lines.append(f'  "{a}" -> "{b}" [label="{rel}:{line}"];')
    lines.append("}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


SELFTEST_LOCKRANK = """
namespace pico::support { namespace rank {
constexpr int kUnranked = 0;
constexpr int kOuter = 100;
constexpr int kInner = 200;
} }
"""

SELFTEST_CLEAN = """
#include "support/ThreadAnnotations.hpp"
struct Widget {
    support::Mutex outerMutex{"widget.outer", support::rank::kOuter};
    support::Mutex innerMutex{"widget.inner", support::rank::kInner};
    void ok() {
        support::MutexLock lock(outerMutex);
        {
            support::MutexLock inner(innerMutex);
        }
    }
};
"""

SELFTEST_INVERTED = """
#include "support/ThreadAnnotations.hpp"
struct Gadget {
    support::Mutex outerMutex{"widget.outer", support::rank::kOuter};
    support::Mutex innerMutex{"widget.inner", support::rank::kInner};
    void forward() {
        support::MutexLock lock(outerMutex);
        support::MutexLock inner(innerMutex);
    }
    void backward() {
        support::MutexLock inner(innerMutex);
        support::MutexLock lock(outerMutex); // seeded inversion
    }
};
"""

SELFTEST_UNDECLARED = """
#include "support/ThreadAnnotations.hpp"
struct Sneaky {
    support::Mutex plainMutex;
    void touch() { support::MutexLock lock(plainMutex); }
};
"""

SELFTEST_HELD_ACROSS = """
#include "support/ThreadAnnotations.hpp"
struct Pool { void submit(int); };
struct Blocky {
    support::Mutex outerMutex{"widget.outer", support::rank::kOuter};
    Pool pool;
    void bad() {
        support::MutexLock lock(outerMutex);
        pool.submit(1);
    }
};
"""


def self_test(repo_root):
    """Prove the checker's teeth before trusting its green light:
    the real tree must pass, and seeded mutations (lock inversion +
    cycle, undeclared mutex, lock held across a handoff) must each
    be detected."""
    failures = []

    real = run_analysis(repo_root)
    if real.violations:
        for v in real.violations:
            print(f"  unexpected: {v}")
        failures.append("clean tree reported violations")
    if not real.edges:
        failures.append("clean tree produced no nesting edges "
                        "(scanner is blind)")

    def synthetic(sources, expect_kinds, label):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src/support").mkdir(parents=True)
            (root / "src/support/LockRank.hpp").write_text(
                SELFTEST_LOCKRANK)
            files = []
            for name, content in sources.items():
                p = root / "src/support" / name
                p.write_text(content)
                files.append(p)
            analysis = run_analysis(root, files=files)
            kinds = {v[0] for v in analysis.violations}
            missing = set(expect_kinds) - kinds
            if missing:
                failures.append(
                    f"{label}: expected {sorted(expect_kinds)}, "
                    f"got {sorted(kinds)}")

    synthetic({"Clean.hpp": SELFTEST_CLEAN}, set(), "clean fixture")
    synthetic({"Inverted.hpp": SELFTEST_INVERTED},
              {"rank-inversion", "cycle"}, "seeded lock inversion")
    synthetic({"Undeclared.hpp": SELFTEST_UNDECLARED},
              {"undeclared-mutex"}, "undeclared mutex")
    synthetic({"HeldAcross.hpp": SELFTEST_HELD_ACROSS},
              {"held-across-call"}, "lock held across handoff")

    # The clean fixture must not cry wolf.
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src/support").mkdir(parents=True)
        (root / "src/support/LockRank.hpp").write_text(
            SELFTEST_LOCKRANK)
        p = root / "src/support/Clean.hpp"
        p.write_text(SELFTEST_CLEAN)
        analysis = run_analysis(root, files=[p])
        if analysis.violations:
            failures.append(
                f"clean fixture flagged: {analysis.violations}")

    if failures:
        for f in failures:
            print(f"picoeval-lockcheck self-test FAILED: {f}",
                  file=sys.stderr)
        return 2
    print("picoeval-lockcheck self-test passed "
          "(clean tree + 3 seeded mutations detected)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="picoeval static lock-order analysis "
                    "(see module docstring)")
    parser.add_argument("--json", default="lockgraph.json",
                        help="lock-graph JSON output path")
    parser.add_argument("--dot", default="lockgraph.dot",
                        help="DOT output path")
    parser.add_argument("--no-artifacts", action="store_true",
                        help="skip writing JSON/DOT")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker detects seeded "
                             "mutations, then exit")
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(repo_root)

    analysis = run_analysis(repo_root)
    if not args.no_artifacts:
        write_json(analysis, Path(args.json))
        write_dot(analysis, Path(args.dot))

    for kind, rel, line, msg in sorted(analysis.violations):
        print(f"{rel}:{line}: {kind}: {msg}")
    if analysis.violations:
        print(f"picoeval-lockcheck: "
              f"{len(analysis.violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"picoeval-lockcheck: {len(analysis.mutexes)} mutex "
          f"identifier(s), {len(analysis.edges)} nesting edge(s), "
          "no violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
