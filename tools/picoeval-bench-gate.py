#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares the BENCH_*.json reports produced by the gated benchmarks
against the committed baselines in bench/baselines/ and fails when a
gated metric regressed beyond its tolerance.

Only *ratio* and *overhead* metrics are gated: they are dimensionless,
so they survive the move between developer machines and CI runners.
Raw nanosecond metrics are recorded in the reports for forensics but
never gated.

Check kinds:
  higher_better    current must stay >= max(floor, min_fraction * base)
  lower_better     current must stay <= ceiling and
                   <= (1 + slack) * base
  max_slack        current must stay <= base + slack (absolute units,
                   e.g. percentage points of overhead)
  absolute_ceiling current must stay <= ceiling, ignoring the
                   baseline value entirely. For metrics whose
                   acceptable range is a contract, not a trend —
                   e.g. the server's shed rate under the smoke load,
                   or queue depth relative to the watermark, which
                   must NEVER exceed 1.0 regardless of history.

Usage:
  picoeval-bench-gate.py [--results DIR] [--baselines DIR]
                         [--benches A,B,...]
  picoeval-bench-gate.py --update-baselines [--results DIR]
  picoeval-bench-gate.py --self-test

--benches restricts the gate to a comma-separated subset of bench
names (the CI bench-gate job excludes server_load, which only the
server-smoke job produces).

--update-baselines copies the current reports over the baselines
(after a deliberate performance change; commit the result).
--self-test proves the gate trips: it replays every baseline against
itself (must pass), then against a copy with each gated metric pushed
just beyond its tolerance (every check must fail).

Standard library only.
"""

import argparse
import json
import os
import shutil
import sys

# ---------------------------------------------------------------------
# Gate specification: one entry per gated metric.
# Tolerances are deliberately wide — CI runners are noisy; the gate is
# for catching real regressions (2x slowdowns, lost speedups), not for
# flagging 10% jitter.
GATES = [
    {
        "bench": "cheetah_speedup",
        "metric": "allconfigs_cost_vs_single",
        "kind": "lower_better",
        "slack": 0.75,   # tolerate up to 1.75x the baseline ratio
        "ceiling": 8.0,  # paper's claim: a small multiple of one run
    },
    {
        "bench": "cheetah_speedup",
        "metric": "singlepass_vs_perconfig_speedup",
        "kind": "higher_better",
        "min_fraction": 0.4,
        "floor": 3.0,    # 20 configs in one pass must beat 3x
    },
    {
        "bench": "columnar_replay",
        "metric": "columnar_vs_legacy_speedup",
        "kind": "higher_better",
        "min_fraction": 0.4,
        "floor": 2.0,    # the columnar replay's >= 2x claim
    },
    {
        "bench": "observability_overhead",
        "metric": "overhead.percent",
        "kind": "max_slack",
        "slack": 10.0,   # percentage points over baseline
    },
    {
        "bench": "observability_overhead",
        "metric": "server.overhead.percent",
        "kind": "max_slack",
        "slack": 10.0,   # request-scoped tracing on the serving path
    },
    {
        "bench": "observability_overhead",
        "metric": "rankcheck.overhead.percent",
        "kind": "max_slack",
        "slack": 10.0,   # lock-rank checker A/B (0% in Release —
                         # the checker is compiled out entirely)
    },
    {
        "bench": "verifier_overhead",
        "metric": "overhead.percent",
        "kind": "max_slack",
        "slack": 15.0,
    },
    {
        "bench": "policy_sweep",
        "metric": "setresident_vs_oracle_speedup",
        "kind": "higher_better",
        "min_fraction": 0.4,
        "floor": 1.3,   # one all-geometry pass must beat the
                        # per-config oracle loop
    },
    # Serving-layer contracts (produced by the server-smoke job's
    # chaos load run, not the bench-gate job). These are absolute:
    # the smoke load is sized so a healthy server sheds only a
    # fraction of it, and the bounded queue's peak may never pass
    # its watermark no matter what the baseline recorded.
    {
        "bench": "server_load",
        "metric": "shed.rate",
        "kind": "absolute_ceiling",
        "ceiling": 0.90,  # some shedding is the design working;
                          # shedding ~everything is an outage
    },
    {
        "bench": "server_load",
        "metric": "deadline.rate",
        "kind": "absolute_ceiling",
        "ceiling": 0.90,
    },
    {
        "bench": "server_load",
        "metric": "queue.peak_over_watermark",
        "kind": "absolute_ceiling",
        "ceiling": 1.0,   # BoundedQueue invariant: peak <= watermark
    },
]

# Every report the gate job must produce, gated metric or not.
EXPECTED_BENCHES = sorted({g["bench"] for g in GATES})


def report_name(bench):
    return "BENCH_%s.json" % bench


def load_report(directory, bench):
    path = os.path.join(directory, report_name(bench))
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "picoeval-bench-v1":
        raise ValueError("%s: unexpected schema %r"
                         % (path, doc.get("schema")))
    return doc


def check_metric(gate, base, cur):
    """Return (ok, limit_description)."""
    kind = gate["kind"]
    if kind == "higher_better":
        limit = max(gate.get("floor", 0.0),
                    gate.get("min_fraction", 0.0) * base)
        return cur >= limit, ">= %.3f" % limit
    if kind == "lower_better":
        limit = (1.0 + gate["slack"]) * base
        ceiling = gate.get("ceiling")
        if ceiling is not None:
            limit = min(limit, max(ceiling, base))
        return cur <= limit, "<= %.3f" % limit
    if kind == "max_slack":
        limit = base + gate["slack"]
        return cur <= limit, "<= %.3f" % limit
    if kind == "absolute_ceiling":
        limit = gate["ceiling"]
        return cur <= limit, "<= %.3f" % limit
    raise ValueError("unknown check kind %r" % kind)


def run_gate(results_dir, baselines_dir, out=sys.stdout,
             benches=None):
    """Compare results against baselines; return the failure count."""
    failures = 0
    rows = []
    for bench in (benches if benches is not None
                  else EXPECTED_BENCHES):
        try:
            current = load_report(results_dir, bench)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            rows.append((bench, "<report>", "-", "-", "-",
                         "FAIL (%s)" % e))
            failures += 1
            continue
        try:
            baseline = load_report(baselines_dir, bench)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            rows.append((bench, "<baseline>", "-", "-", "-",
                         "FAIL (%s)" % e))
            failures += 1
            continue
        for gate in (g for g in GATES if g["bench"] == bench):
            metric = gate["metric"]
            base = baseline.get("metrics", {}).get(metric)
            cur = current.get("metrics", {}).get(metric)
            if base is None or cur is None:
                rows.append((bench, metric, str(base), str(cur), "-",
                             "FAIL (metric missing)"))
                failures += 1
                continue
            ok, limit = check_metric(gate, float(base), float(cur))
            rows.append((bench, metric, "%.3f" % float(base),
                         "%.3f" % float(cur), limit,
                         "ok" if ok else "FAIL"))
            if not ok:
                failures += 1

    widths = [max(len(str(r[i])) for r in rows + [HEADER])
              for i in range(6)]
    for row in [HEADER] + rows:
        out.write("  ".join(str(c).ljust(w)
                            for c, w in zip(row, widths)).rstrip()
                  + "\n")
    out.write("\n%d check(s) failed\n" % failures)
    return failures


HEADER = ("bench", "metric", "baseline", "current", "limit", "status")


def update_baselines(results_dir, baselines_dir):
    os.makedirs(baselines_dir, exist_ok=True)
    for bench in EXPECTED_BENCHES:
        src = os.path.join(results_dir, report_name(bench))
        dst = os.path.join(baselines_dir, report_name(bench))
        shutil.copyfile(src, dst)
        print("baseline updated: %s" % dst)
    return 0


def inflate(gate, value):
    """Push a metric just past its tolerance, in the bad direction."""
    kind = gate["kind"]
    if kind == "higher_better":
        limit = max(gate.get("floor", 0.0),
                    gate.get("min_fraction", 0.0) * value)
        return limit * 0.9
    if kind == "lower_better":
        limit = (1.0 + gate["slack"]) * value
        ceiling = gate.get("ceiling")
        if ceiling is not None:
            limit = min(limit, max(ceiling, value))
        return limit * 1.1
    if kind == "max_slack":
        return value + gate["slack"] + 1.0
    if kind == "absolute_ceiling":
        return gate["ceiling"] * 1.1 + 0.1
    raise ValueError(kind)


def self_test(baselines_dir, tmp_dir):
    """Prove the gate passes on pristine data and trips on regressed
    data. Returns 0 on success."""
    import io

    # 1. Baselines against themselves: must be clean.
    buf = io.StringIO()
    if run_gate(baselines_dir, baselines_dir, out=buf) != 0:
        print(buf.getvalue())
        print("self-test FAILED: pristine baselines did not pass")
        return 1

    # 2. Regress every gated metric past its tolerance: every gated
    #    check must fail.
    os.makedirs(tmp_dir, exist_ok=True)
    for bench in EXPECTED_BENCHES:
        doc = load_report(baselines_dir, bench)
        for gate in (g for g in GATES if g["bench"] == bench):
            metric = gate["metric"]
            doc["metrics"][metric] = inflate(
                gate, float(doc["metrics"][metric]))
        with open(os.path.join(tmp_dir, report_name(bench)), "w",
                  encoding="utf-8") as f:
            json.dump(doc, f)
    buf = io.StringIO()
    failed = run_gate(tmp_dir, baselines_dir, out=buf)
    if failed != len(GATES):
        print(buf.getvalue())
        print("self-test FAILED: expected %d tripped checks, got %d"
              % (len(GATES), failed))
        return 1

    print("self-test passed: pristine baselines clean, "
          "%d inflated metric(s) all tripped" % len(GATES))
    return 0


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(
        description="benchmark regression gate")
    ap.add_argument("--results", default=".",
                    help="directory holding the BENCH_*.json reports")
    ap.add_argument("--baselines",
                    default=os.path.join(repo, "bench", "baselines"),
                    help="committed baseline directory")
    ap.add_argument("--update-baselines", action="store_true",
                    help="overwrite baselines with current results")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on inflated results")
    ap.add_argument("--benches",
                    help="comma-separated subset of benches to gate "
                         "(default: all)")
    args = ap.parse_args()

    benches = None
    if args.benches:
        benches = sorted(set(args.benches.split(",")))
        unknown = [b for b in benches if b not in EXPECTED_BENCHES]
        if unknown:
            print("unknown bench(es): %s (known: %s)"
                  % (", ".join(unknown),
                     ", ".join(EXPECTED_BENCHES)),
                  file=sys.stderr)
            return 2

    if args.self_test:
        return self_test(args.baselines,
                         os.path.join(args.results,
                                      "bench-gate-selftest"))
    if args.update_baselines:
        return update_baselines(args.results, args.baselines)
    return 1 if run_gate(args.results, args.baselines,
                         benches=benches) else 0


if __name__ == "__main__":
    sys.exit(main())
