/**
 * @file
 * Experiment E4 — paper Figure 5: static and dynamic cumulative
 * distributions of per-block dilation for the gcc and ghostscript
 * analogues, on the 2111, 3221 and 6332 processors.
 *
 * Each block's dilation is the ratio of its encoded size on the
 * target machine to its size on the 1111 reference; the static CDF
 * weighs blocks equally, the dynamic CDF by execution frequency. The
 * closer the curves are to a step at the text dilation, the better
 * the uniform-dilation assumption.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "support/Stats.hpp"

using namespace pico;

namespace
{

void
reportApp(const std::string &app_name, bench::BenchReport &json)
{
    auto app = bench::buildApp(app_name);
    const auto &prog = app.program();
    const auto &ref_bin = app.build("1111").bin;

    std::cout << "Dilation distribution - " << app_name << "\n";
    for (const char *m : {"2111", "3221", "6332"}) {
        const auto &bin = app.build(m).bin;
        WeightedDistribution stat_dist, dyn_dist;
        for (uint32_t f = 0; f < bin.numFunctions(); ++f) {
            for (uint32_t b = 0; b < bin.numBlocks(f); ++b) {
                double ref_size = ref_bin.block(f, b).sizeBytes;
                double size = bin.block(f, b).sizeBytes;
                double d = size / ref_size;
                stat_dist.add(d, 1.0);
                dyn_dist.add(
                    d, static_cast<double>(
                           prog.functions[f].blocks[b].profileCount));
            }
        }

        TextTable table(std::string("CDF for ") + m +
                        " (text dilation " +
                        TextTable::num(app.dilation(m), 2) + ")");
        table.setHeader({"dilation<=", "static", "dynamic"});
        for (double x = 0.5; x <= 5.01; x += 0.5) {
            table.addRow({TextTable::num(x, 1),
                          TextTable::num(
                              stat_dist.fractionAtOrBelow(x), 3),
                          TextTable::num(
                              dyn_dist.fractionAtOrBelow(x), 3)});
        }
        table.addRow({"median",
                      TextTable::num(stat_dist.quantile(0.5), 2),
                      TextTable::num(dyn_dist.quantile(0.5), 2)});
        table.print(std::cout);
        std::cout << "\n";
        json.addTable(table);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Figure 5: dilation distribution for 085.gcc and "
                 "ghostscript\n\n";
    bench::BenchReport json("fig5");
    json.setInfo("experiment", "per-block dilation distributions");
    reportApp("085.gcc", json);
    reportApp("ghostscript", json);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
