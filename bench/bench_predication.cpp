/**
 * @file
 * Extension experiment — predication (section 3.1 lists predication
 * in the design space; section 4.1 requires one reference processor
 * per predication/speculation combination).
 *
 * For each benchmark, compare the plain and predicated variants of
 * the same machines: dynamic branch density, text size, and 1KB
 * I-cache misses, plus the within-class dilations that the dilation
 * model would use. Predication trades wider operation encodings
 * (guard fields) and always-fetched predicated ops for fewer
 * branches and larger scheduling regions.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/CacheSim.hpp"
#include "compiler/Hyperblock.hpp"
#include "linker/LinkedBinary.hpp"
#include "trace/TraceGenerator.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Extension: predicated machines (hyperblock "
                 "if-conversion, 'p' machine variants)\n\n";

    TextTable table("Plain vs predicated, per benchmark");
    table.setHeader({"Benchmark", "merged", "text 1111",
                     "text 1111p", "I$1KB 1111", "I$1KB 1111p",
                     "dil 3221", "dil 3221p"});

    for (const char *name :
         {"085.gcc", "099.go", "ghostscript", "epic", "rasta"}) {
        auto spec = workloads::specByName(name);
        auto base = workloads::buildAndProfile(spec,
                                               bench::profileBlocks);
        compiler::HyperblockStats stats;
        auto conv = compiler::formHyperblocks(base, &stats);
        trace::ExecutionEngine::profile(conv, bench::profileBlocks);

        auto plain_ref = workloads::buildFor(
            base, machine::MachineDesc::fromName("1111"));
        auto pred_ref = workloads::buildFor(
            conv, machine::MachineDesc::fromName("1111p"));
        auto plain_tgt = workloads::buildFor(
            base, machine::MachineDesc::fromName("3221"));
        auto pred_tgt = workloads::buildFor(
            conv, machine::MachineDesc::fromName("3221p"));

        auto icache_misses = [&](const ir::Program &prog,
                                 const workloads::MachineBuild &b) {
            cache::CacheSim sim(bench::smallIcache());
            trace::TraceGenerator gen(prog, b.sched, b.bin);
            gen.generate(trace::TraceKind::Instruction,
                         [&sim](const trace::Access &a) {
                             sim.access(a.addr);
                         },
                         bench::traceBlocks);
            return sim.misses();
        };

        table.addRow(
            {name, std::to_string(stats.merged),
             std::to_string(plain_ref.bin.textSize()),
             std::to_string(pred_ref.bin.textSize()),
             std::to_string(icache_misses(base, plain_ref)),
             std::to_string(icache_misses(conv, pred_ref)),
             TextTable::num(
                 linker::textDilation(plain_tgt.bin, plain_ref.bin),
                 2),
             TextTable::num(
                 linker::textDilation(pred_tgt.bin, pred_ref.bin),
                 2)});
    }
    table.print(std::cout);

    std::cout << "\nDilations are measured within each "
                 "trace-equivalence class ('dil 3221p' is relative "
                 "to 1111p), exactly how the dilation model is "
                 "applied when the design space mixes predication "
                 "settings.\n";

    bench::BenchReport json("predication");
    json.setInfo("experiment", "plain vs predicated machine variants");
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
