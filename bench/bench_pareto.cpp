/**
 * @file
 * Experiment E10 — paper Figure 2 / section 5: a full spacewalker
 * run over processors x memory hierarchies for one application,
 * printing the processor, memory and complete-system Pareto sets.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "dse/Spacewalker.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Spacewalker exploration (pgpdecode analogue): "
                 "cost/performance Pareto sets\n\n";

    auto spec = workloads::specByName("pgpdecode");
    auto prog = workloads::buildAndProfile(spec, bench::profileBlocks);

    dse::MemorySpaces spaces; // default L1/L2 spaces (~20+ caches each)
    dse::Spacewalker::Options opts;
    opts.traceBlocks = bench::traceBlocks;
    dse::Spacewalker walker(
        spaces, {"1111", "2111", "3221", "4221", "6332"}, opts);
    auto result = walker.explore(prog);

    TextTable dil("Measured text dilations");
    dil.setHeader({"machine", "dilation", "processor cycles"});
    for (const auto &[name, d] : result.dilations) {
        dil.addRow({name, TextTable::num(d, 2),
                    std::to_string(result.processorCycles.at(name))});
    }
    dil.print(std::cout);
    std::cout << "\n";

    TextTable procs("Processor Pareto set");
    procs.setHeader({"design", "cost", "cycles"});
    for (const auto &p : result.processors.sorted())
        procs.addRow({p.id, TextTable::num(p.cost, 1),
                      TextTable::num(p.time, 0)});
    procs.print(std::cout);
    std::cout << "\n";

    TextTable mem("Memory-hierarchy Pareto set at dilation of 6332");
    auto mem_front =
        walker.memoryWalker().pareto(result.dilations.at("6332"));
    mem.setHeader({"hierarchy", "area", "stall cycles"});
    for (const auto &p : mem_front.sorted())
        mem.addRow({p.id, TextTable::num(p.cost, 1),
                    TextTable::num(p.time, 0)});
    mem.print(std::cout);
    std::cout << "\n";

    TextTable sys("Complete-system Pareto set");
    sys.setHeader({"system", "cost", "total cycles"});
    for (const auto &p : result.systems.sorted())
        sys.addRow({p.id, TextTable::num(p.cost, 1),
                    TextTable::num(p.time, 0)});
    sys.print(std::cout);

    std::cout << "\n" << result.systems.offered()
              << " system designs offered, "
              << result.systems.size() << " on the Pareto front\n";

    bench::BenchReport json("pareto");
    json.setInfo("experiment", "spacewalker Pareto sets (pgpdecode)");
    json.setMetric("systems.offered",
                   static_cast<uint64_t>(result.systems.offered()));
    json.setMetric("systems.front",
                   static_cast<uint64_t>(result.systems.size()));
    json.setMetric("processors.front",
                   static_cast<uint64_t>(result.processors.size()));
    json.addTable(dil);
    json.addTable(procs);
    json.addTable(mem);
    json.addTable(sys);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
