/**
 * @file
 * Experiment E9 — section 3.3's Cheetah claim, as a google-benchmark
 * microbenchmark: simulating the full range of set counts and
 * associativities in a single pass costs little more than simulating
 * one configuration, and far less than per-configuration passes.
 *
 * Plus the parallel companion: one single-pass sweep is needed *per
 * line size*, and those sweeps are independent, so the SimBank runs
 * them concurrently on a ThreadPool. BM_ParallelLineSweeps measures
 * that sweep — over the production columnar trace path — at 1, 2 and
 * 4 jobs (real time; jobs = 1 is the serial fused reference —
 * speedup is hardware-dependent and only shows on multi-core
 * machines).
 *
 * The run times of every benchmark are harvested into
 * BENCH_cheetah_speedup.json (honoring --json-out) together with the
 * derived ratios the CI bench gate tracks:
 *   allconfigs_cost_vs_single        one-pass-all-configs vs one
 *   singlepass_vs_perconfig_speedup  one pass vs 20 naive passes
 */

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench/BenchCommon.hpp"
#include "cache/CacheSim.hpp"
#include "cache/SinglePassSim.hpp"
#include "dse/Evaluators.hpp"
#include "support/Random.hpp"
#include "support/ThreadPool.hpp"
#include "trace/ColumnarTrace.hpp"

using namespace pico;

namespace
{

std::vector<uint64_t> &
sharedTrace()
{
    static std::vector<uint64_t> trace = [] {
        Rng rng(20260706);
        std::vector<uint64_t> out;
        out.reserve(200000);
        uint64_t pc = 0;
        for (int i = 0; i < 200000; ++i) {
            if (rng.coin(0.1))
                pc = rng.below(1 << 18) & ~3ULL;
            out.push_back(pc);
            pc += 4;
        }
        return out;
    }();
    return trace;
}

void
BM_SingleConfigSim(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        cache::CacheSim sim(cache::CacheConfig{
            static_cast<uint32_t>(state.range(0)), 2, 32});
        for (auto addr : trace)
            sim.access(addr);
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * trace.size()));
}

void
BM_SinglePassAllConfigs(benchmark::State &state)
{
    // 32..512 sets x 1..4 ways = 20 configurations in one pass.
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        cache::SinglePassSim sim(32, 32, 512, 4);
        for (auto addr : trace)
            sim.access(addr);
        benchmark::DoNotOptimize(sim.misses(128, 2));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * trace.size()));
}

void
BM_PerConfigPasses(benchmark::State &state)
{
    // The naive alternative: 20 separate passes.
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        uint64_t total = 0;
        for (uint32_t sets = 32; sets <= 512; sets *= 2) {
            for (uint32_t assoc = 1; assoc <= 4; ++assoc) {
                cache::CacheSim sim(
                    cache::CacheConfig{sets, assoc, 32});
                for (auto addr : trace)
                    sim.access(addr);
                total += sim.misses();
            }
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * trace.size()));
}

const trace::ColumnarTraceBuffer &
sharedBuffer()
{
    static trace::ColumnarTraceBuffer buffer = [] {
        trace::ColumnarTraceBuffer b;
        for (auto addr : sharedTrace())
            b(trace::Access{addr, true, false});
        return b;
    }();
    return buffer;
}

void
BM_ParallelLineSweeps(benchmark::State &state)
{
    // Line sizes 8..64 → five covered sweeps (SimBank also covers
    // the 4-byte minimum for dilation interpolation), fanned out on
    // a pool of jobs workers. Results are identical for every job
    // count; only wall-clock time changes.
    dse::CacheSpace space;
    space.sizesBytes = {2048, 4096, 8192, 16384};
    space.assocs = {1, 2, 4};
    space.lineSizes = {8, 16, 32, 64};

    const auto jobs = static_cast<unsigned>(state.range(0));
    support::ThreadPool pool(jobs - 1);
    const auto &buffer = sharedBuffer();
    for (auto _ : state) {
        dse::SimBank bank(space);
        bank.simulate(buffer, &pool);
        benchmark::DoNotOptimize(
            bank.misses(cache::CacheConfig{128, 2, 32}));
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * buffer.size() *
        dse::SimBank(space).simRuns()));
}

/**
 * Console reporter that additionally harvests every finished run's
 * adjusted real time, so the bench report carries the same numbers
 * the console shows.
 */
class HarvestingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const auto &run : runs) {
            if (!run.error_occurred)
                realNs[run.benchmark_name()] =
                    run.GetAdjustedRealTime();
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::map<std::string, double> realNs;
};

/** Metric-key-safe name: '/' (arg separator) becomes '.'. */
std::string
metricKey(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '/' || c == ':')
            c = '.';
    }
    return out;
}

} // namespace

BENCHMARK(BM_SingleConfigSim)->Arg(128);
BENCHMARK(BM_SinglePassAllConfigs);
BENCHMARK(BM_PerConfigPasses);
BENCHMARK(BM_ParallelLineSweeps)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

int
main(int argc, char **argv)
{
    std::string json_out = bench::extractJsonOutArg(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    HarvestingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    bench::BenchReport json("cheetah_speedup");
    json.setInfo("experiment",
                 "single-pass vs per-config simulation cost");
    for (const auto &[name, ns] : reporter.realNs)
        json.setMetric(metricKey(name) + ".real_ns", ns);

    // The two ratios of the paper's claim; both are >> 1 when the
    // single-pass lever works, and stable enough to gate on.
    auto ns = [&](const char *name) {
        auto it = reporter.realNs.find(name);
        return it == reporter.realNs.end() ? 0.0 : it->second;
    };
    double single = ns("BM_SingleConfigSim/128");
    double all = ns("BM_SinglePassAllConfigs");
    double per_config = ns("BM_PerConfigPasses");
    if (all > 0.0 && single > 0.0) {
        // Cost of the full-range pass relative to one config
        // (lower-better, the paper expects a small multiple) and the
        // speedup over 20 naive per-config passes (higher-better).
        json.setMetric("allconfigs_cost_vs_single", all / single);
        json.setMetric("singlepass_vs_perconfig_speedup",
                       per_config / all);
    }
    double serial = ns("BM_ParallelLineSweeps/1/real_time");
    double four = ns("BM_ParallelLineSweeps/4/real_time");
    if (four > 0.0)
        json.setMetric("parallel_sweep_speedup_4j", serial / four);

    benchmark::Shutdown();
    return bench::writeReport(json, json_out) ? 0 : 1;
}
