/**
 * @file
 * Experiment E11 — section 5.2's granule-size guidance: the AHH
 * trace parameters must be stable once the granule is large enough
 * (the paper settles on 10,000 references for instruction traces and
 * 200,000 for unified traces). This bench sweeps granule sizes and
 * reports the fitted parameters plus the collision counts of the
 * paper's caches, showing where they stabilize.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "core/AhhModel.hpp"
#include "core/TraceModel.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Granule-size sensitivity of the AHH trace "
                 "parameters (085.gcc analogue)\n\n";
    auto app = bench::buildApp("085.gcc");
    const auto &itrace =
        app.traceFor("1111", trace::TraceKind::Instruction);
    const auto &utrace =
        app.traceFor("1111", trace::TraceKind::Unified);

    TextTable itable("Instruction trace parameters vs granule");
    itable.setHeader({"granule", "granules", "u(1)", "p1", "lav",
                      "Coll(1KB I$)"});
    for (uint64_t g : {1000, 2500, 5000, 10000, 20000, 40000}) {
        core::ItraceModeler modeler(g);
        for (const auto &a : itrace)
            modeler.access(a);
        auto p = modeler.params();
        auto cfg = bench::smallIcache();
        double coll = core::ahh::collisions(
            p.uLines(cfg.lineBytes / 4.0), cfg.sets, cfg.assoc);
        itable.addRow({std::to_string(g),
                       std::to_string(modeler.granules()),
                       TextTable::num(p.u1, 1),
                       TextTable::num(p.p1, 3),
                       TextTable::num(p.lav, 2),
                       TextTable::num(coll, 1)});
    }
    itable.print(std::cout);
    std::cout << "\n";

    TextTable utable("Unified trace parameters vs granule");
    utable.setHeader({"granule", "granules", "uI(1)", "uD(1)",
                      "lavI", "lavD", "Coll(16KB U$)"});
    for (uint64_t g : {25000, 50000, 100000, 200000}) {
        core::UtraceModeler modeler(g);
        for (const auto &a : utrace)
            modeler.access(a);
        if (modeler.granules() == 0) {
            utable.addRow({std::to_string(g), "0", "-", "-", "-",
                           "-", "-"});
            continue;
        }
        auto pi = modeler.instrParams();
        auto pd = modeler.dataParams();
        auto cfg = bench::smallUcache();
        double uL = pi.uLines(cfg.lineBytes / 4.0) +
                    pd.uLines(cfg.lineBytes / 4.0);
        double coll = core::ahh::collisions(uL, cfg.sets, cfg.assoc);
        utable.addRow({std::to_string(g),
                       std::to_string(modeler.granules()),
                       TextTable::num(pi.u1, 1),
                       TextTable::num(pd.u1, 1),
                       TextTable::num(pi.lav, 2),
                       TextTable::num(pd.lav, 2),
                       TextTable::num(coll, 1)});
    }
    utable.print(std::cout);

    std::cout << "\nLarger granules increase unique lines and "
                 "collisions; the unified (L2) model needs a larger "
                 "granule than the instruction (L1) model for "
                 "numerically stable collision counts, matching the "
                 "paper's 10k/200k choice.\n";

    bench::BenchReport json("granule");
    json.setInfo("experiment", "granule-size sensitivity (085.gcc)");
    json.addTable(itable);
    json.addTable(utable);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
