/**
 * @file
 * Experiment E5 — paper Table 3: text dilation of every benchmark on
 * every target processor, relative to the 1111 reference.
 *
 * The paper's regime: dilation grows with issue width but much more
 * slowly than the width itself; 2111..4221 stay below about 2.5 and
 * only 6332 reaches the 2.5–3.3 range.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "support/Stats.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Table 3: text dilation for all benchmarks\n\n";
    auto suite = bench::buildSuite();

    TextTable table("TextDilation");
    std::vector<std::string> header = {"Benchmark"};
    for (const auto &m : bench::paperMachines)
        header.push_back(m);
    table.setHeader(header);

    RunningStat per_machine[5];
    for (const auto &app : suite) {
        std::vector<std::string> row = {app.name()};
        for (size_t i = 0; i < bench::paperMachines.size(); ++i) {
            double d = app.dilation(bench::paperMachines[i]);
            per_machine[i].add(d);
            row.push_back(TextTable::num(d, 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean_row = {"(mean)"};
    for (auto &stat : per_machine)
        mean_row.push_back(TextTable::num(stat.mean(), 2));
    table.addRow(mean_row);
    table.print(std::cout);

    std::cout << "\nIssue widths: 4, 5, 8, 9, 14 — dilation grows "
                 "much more slowly than issue width.\n";

    bench::BenchReport json("table3");
    json.setInfo("experiment", "text dilation per machine");
    json.setMetric("benchmarks",
                   static_cast<uint64_t>(suite.size()));
    for (size_t i = 0; i < bench::paperMachines.size(); ++i)
        json.setMetric("dilation.mean." + bench::paperMachines[i],
                       per_machine[i].mean());
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
