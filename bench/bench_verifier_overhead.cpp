/**
 * @file
 * Verifier overhead guard: the static verification passes run at the
 * Spacewalker's phase boundaries and are advertised as cheap enough
 * to leave on by default in Debug builds — and affordable even in
 * Release (--verify). This bench times complete explorations with
 * verification off and on (a fresh Spacewalker per repetition, so no
 * evaluation-cache state leaks between sides) and reports the on/off
 * wall-time ratio against a 5% budget.
 *
 * Emits BENCH_verifier_overhead.json with the raw timings so CI
 * archives the ratio next to the run reports.
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "bench/BenchCommon.hpp"
#include "dse/Spacewalker.hpp"
#include "support/Metrics.hpp"

using namespace pico;

namespace
{

/** One complete exploration, fresh walker, in ns. */
uint64_t
timedWalk(const ir::Program &prog, int verify)
{
    dse::MemorySpaces spaces;
    dse::Spacewalker::Options opts;
    opts.traceBlocks = 10000;
    opts.uGranule = 50000;
    opts.jobs = 1;
    opts.verify = verify;
    dse::Spacewalker walker(spaces, {"1111", "2211", "3221"}, opts);
    uint64_t start = support::monotonicNowNs();
    auto result = walker.explore(prog);
    uint64_t elapsed = support::monotonicNowNs() - start;
    if (!result.diagnostics.clean()) {
        // A dirty result would mean the bench times error paths.
        std::cerr << result.diagnostics.report();
        std::exit(1);
    }
    return elapsed;
}

/** Best-of-N walk time (min filters scheduler noise). */
uint64_t
bestOf(const ir::Program &prog, int verify, int reps)
{
    uint64_t best = UINT64_MAX;
    for (int i = 0; i < reps; ++i)
        best = std::min(best, timedWalk(prog, verify));
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    const std::string app_name = argc > 1 ? argv[1] : "rasta";
    constexpr int reps = 3;

    std::cout << "verifier overhead: full exploration of '"
              << app_name << "', best of " << reps
              << " (verify off vs on)\n";

    auto prog = workloads::buildAndProfile(
        workloads::specByName(app_name), bench::profileBlocks);

    // Warm up file caches and allocator state before either side.
    timedWalk(prog, 0);

    uint64_t off_ns = bestOf(prog, 0, reps);
    uint64_t on_ns = bestOf(prog, 1, reps);

    double ratio = off_ns > 0 ? static_cast<double>(on_ns) /
                                    static_cast<double>(off_ns)
                              : 1.0;
    double percent = (ratio - 1.0) * 100.0;

    TextTable table("Exploration wall time, verification off vs on");
    table.setHeader({"mode", "best ns", "overhead"});
    table.addRow({"off", std::to_string(off_ns), "-"});
    table.addRow({"on", std::to_string(on_ns),
                  TextTable::num(percent, 2) + "%"});
    table.print(std::cout);

    bench::BenchReport json("verifier_overhead");
    json.setInfo("app", app_name);
    json.setInfo("path", "Spacewalker::explore (phase-boundary "
                         "verification)");
    json.setMetric("reps", static_cast<uint64_t>(reps));
    json.setMetric("ns.off", off_ns);
    json.setMetric("ns.on", on_ns);
    json.setMetric("overhead.percent", percent);
    json.addTable(table);
    if (!bench::writeReport(json, json_out))
        return 1;

    // The budget check is advisory on shared CI runners (noise can
    // exceed the verifier itself); the JSON carries the truth.
    constexpr double budgetPercent = 5.0;
    if (percent > budgetPercent) {
        std::cout << "\nWARNING: overhead "
                  << TextTable::num(percent, 2) << "% exceeds the "
                  << budgetPercent << "% budget on this machine\n";
    } else {
        std::cout << "\noverhead within the " << budgetPercent
                  << "% budget\n";
    }
    return 0;
}
