/**
 * @file
 * Experiment E2 — paper section 6.1: cross-validation of the memory
 * simulation system against an independently implemented simulator
 * (the IMPACT analogue), over several benchmarks and a range of
 * cache configurations.
 *
 * Expected: identical miss counts with the write-buffer model off,
 * and "virtually identical" (sub-percent) differences with it on.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/CacheSim.hpp"
#include "cache/ImpactSim.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Section 6.1 validation: reference simulator vs "
                 "independent (IMPACT-style) simulator\n\n";

    std::vector<cache::CacheConfig> configs = {
        bench::smallIcache(), bench::largeIcache(),
        bench::smallUcache(), bench::largeUcache(),
        cache::CacheConfig::fromSize(4096, 4, 16),
    };

    TextTable table("Cross-validation (miss counts)");
    table.setHeader({"Benchmark", "Cache", "CacheSim", "ImpactSim",
                     "Impact+WB", "WB delta%"});

    bool identical = true;
    for (const char *name : {"085.gcc", "ghostscript", "epic",
                             "rasta"}) {
        auto app = bench::buildApp(name);
        const auto &trace =
            app.traceFor("1111", trace::TraceKind::Unified);
        for (const auto &cfg : configs) {
            cache::CacheSim ref(cfg);
            cache::ImpactSim alt(cfg);
            cache::ImpactSim wb(cfg, true);
            for (const auto &a : trace) {
                ref.access(a.addr, a.isWrite);
                alt.access(a.addr, a.isWrite);
                wb.access(a.addr, a.isWrite);
            }
            identical &= ref.misses() == alt.misses();
            double delta =
                ref.misses()
                    ? 100.0 *
                          static_cast<double>(ref.misses() -
                                              wb.misses()) /
                          static_cast<double>(ref.misses())
                    : 0.0;
            table.addRow({name, cfg.name(),
                          std::to_string(ref.misses()),
                          std::to_string(alt.misses()),
                          std::to_string(wb.misses()),
                          TextTable::num(delta, 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExact agreement without write-buffer model: "
              << (identical ? "YES" : "NO")
              << " (paper: final miss rates virtually identical "
                 "after accounting for write-buffer handling)\n";

    bench::BenchReport json("validation");
    json.setInfo("experiment",
                 "cross-validation vs independent simulator");
    json.setMetric("identical",
                   static_cast<uint64_t>(identical ? 1 : 0));
    json.addTable(table);
    if (!bench::writeReport(json, json_out))
        return 1;
    return identical ? 0 : 1;
}
