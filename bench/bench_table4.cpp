/**
 * @file
 * Experiment E8 — paper Table 4: actual, dilated and estimated
 * misses for every benchmark, the four evaluation caches, and the
 * four target processors, normalized to the 1111 reference.
 *
 * This is the paper's bottom-line accuracy table. Expected shape:
 * estimates track actuals better for narrower processors than wider
 * ones and better for instruction caches than for unified caches,
 * with occasional outliers on the small configurations.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "support/Stats.hpp"

using namespace pico;

namespace
{

void
section(const std::vector<bench::AppContext> &suite,
        bench::EvalCache which, const std::string &title,
        bench::BenchReport &json)
{
    TextTable table(title);
    std::vector<std::string> header = {"Benchmark", "1111/Act"};
    for (const auto &m : bench::paperMachines) {
        if (m == "1111")
            continue;
        header.push_back(m + "/Act");
        header.push_back(m + "/Dil");
        header.push_back(m + "/Est");
    }
    table.setHeader(header);

    RunningStat est_err_narrow, est_err_wide;
    for (const auto &app : suite) {
        std::vector<std::string> row = {app.name(), "1.00"};
        for (const auto &m : bench::paperMachines) {
            if (m == "1111")
                continue;
            auto t = bench::evaluateTriple(app, m, which);
            double base = t.reference > 0 ? t.reference : 1.0;
            row.push_back(TextTable::num(t.actual / base, 2));
            row.push_back(TextTable::num(t.dilated / base, 2));
            row.push_back(TextTable::num(t.estimated / base, 2));
            if (t.actual > 0) {
                double err =
                    std::abs(t.estimated - t.actual) / t.actual;
                (m == "2111" ? est_err_narrow : est_err_wide)
                    .add(err);
            }
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "mean |est-act|/act: 2111 = "
              << TextTable::num(est_err_narrow.mean(), 3)
              << ", wider = "
              << TextTable::num(est_err_wide.mean(), 3) << "\n\n";
    json.addTable(table);
    json.setMetric("est_err.narrow." + title,
                   est_err_narrow.mean());
    json.setMetric("est_err.wide." + title, est_err_wide.mean());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Table 4: actual, dilated and estimated misses for "
                 "all benchmarks (normalized to 1111)\n\n";
    auto suite = bench::buildSuite();
    bench::BenchReport json("table4");
    json.setInfo("experiment",
                 "bottom-line accuracy across the suite");
    section(suite, bench::EvalCache::SmallI, "1 KB Icache", json);
    section(suite, bench::EvalCache::LargeI, "16 KB Icache", json);
    section(suite, bench::EvalCache::SmallU, "16 K Ucache", json);
    section(suite, bench::EvalCache::LargeU, "128 K Ucache", json);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
