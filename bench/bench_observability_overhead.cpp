/**
 * @file
 * Observability overhead microbench: the instrumentation layer's
 * contract is "zero cost when disabled, negligible when enabled".
 * This bench measures both sides on the hottest instrumented path —
 * the SimBank per-line-size sweeps — by replaying the same captured
 * trace with the registry off and on, and reports the enabled/
 * disabled wall-time ratio (expected well under the 2% budget;
 * instrumentation is per-sweep, not per-access).
 *
 * A second scenario measures the serving layer with request-scoped
 * tracing: end-to-end EvalService request latency with tracing off
 * vs on (request spans, flow events, context propagation and the
 * always-on flight recorder all engaged), over an identical request
 * sequence per mode. Same 2% budget.
 *
 * Emits BENCH_observability_overhead.json with the raw timings so CI
 * archives the ratio next to the run reports.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/BenchCommon.hpp"
#include "dse/Evaluators.hpp"
#include "server/EvalService.hpp"
#include "server/Protocol.hpp"
#include "support/LockRank.hpp"
#include "support/Metrics.hpp"
#include "support/ThreadAnnotations.hpp"
#include "support/TraceEvents.hpp"

using namespace pico;

namespace
{

/** Wall time of one full sweep set over the buffer, in ns. */
uint64_t
timedSimulate(dse::SimBank &bank, const trace::TraceBuffer &buffer)
{
    uint64_t start = support::monotonicNowNs();
    bank.simulate(buffer, nullptr);
    return support::monotonicNowNs() - start;
}

/** Best-of-N sweep time (min filters scheduler noise). */
uint64_t
bestOf(dse::SimBank &bank, const trace::TraceBuffer &buffer, int reps)
{
    uint64_t best = UINT64_MAX;
    for (int i = 0; i < reps; ++i)
        best = std::min(best, timedSimulate(bank, buffer));
    return best;
}

/**
 * Best-of-reps per-request latency of an EvalService under the
 * current observability switches. Every request is unique work (the
 * trace budget varies per call, so neither the service memo nor the
 * eval cache short-circuits it) and the (rep, i) -> budget mapping is
 * identical across modes, so off and on time the same walks.
 */
uint64_t
serveBestOf(const std::string &app, int reps, int requests)
{
    server::ServiceOptions opts;
    opts.workers = 2;
    server::EvalService service(opts);

    auto makeRequest = [&app](uint64_t trace_blocks) {
        server::Request req;
        req.app = app;
        req.machines = "1111";
        req.traceBlocks = trace_blocks;
        return req;
    };
    // Warm-up: the first request pays the app build+profile.
    service.call(makeRequest(1000));

    uint64_t best = UINT64_MAX;
    for (int rep = 0; rep < reps; ++rep) {
        uint64_t start = support::monotonicNowNs();
        for (int i = 0; i < requests; ++i) {
            server::Response resp = service.call(makeRequest(
                1200 + static_cast<uint64_t>(rep) * 100 + i));
            if (resp.status != server::Status::Ok) {
                std::cout << "server scenario request failed: "
                          << resp.error << "\n";
                std::exit(1);
            }
        }
        uint64_t total = support::monotonicNowNs() - start;
        best = std::min(best, total / requests);
    }
    return best;
}

/**
 * Best-of-reps time of a hot uncontended MutexLock loop on a ranked
 * mutex under the current lock-rank-checker toggle. In Release the
 * checker is compiled out (PICOEVAL_LOCK_RANK_CHECK == 0) and the
 * toggle is inert, so disabled and enabled time the identical code —
 * the measured 0% *is* the Release overhead claim. In Debug the pair
 * quantifies what the thread-local stack bookkeeping costs.
 */
uint64_t
rankCheckBestOf(int reps)
{
    support::Mutex mtx{"bench.rankcheck",
                       support::rank::kMetricsRegistry};
    constexpr int iters = 200000;
    uint64_t best = UINT64_MAX;
    volatile uint64_t sink = 0;
    for (int rep = 0; rep < reps; ++rep) {
        uint64_t start = support::monotonicNowNs();
        for (int i = 0; i < iters; ++i) {
            support::MutexLock lock(mtx);
            sink = sink + 1;
        }
        best = std::min(best,
                        (support::monotonicNowNs() - start) / iters);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    const std::string app_name = argc > 1 ? argv[1] : "rasta";
    constexpr int reps = 5;

    std::cout << "observability overhead: SimBank sweeps over '"
              << app_name << "', best of " << reps
              << " (metrics+trace off vs on)\n";

    auto app = bench::buildApp(app_name);
    trace::TraceBuffer buffer;
    for (const auto &a :
         app.traceFor("1111", trace::TraceKind::Instruction))
        buffer(a);

    dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
    dse::SimBank bank(space);

    // Warm up caches and the trace buffer before either side.
    bank.simulate(buffer, nullptr);

    support::setMetricsEnabled(false);
    support::setTraceEnabled(false);
    uint64_t off_ns = bestOf(bank, buffer, reps);

    support::setMetricsEnabled(true);
    support::setTraceEnabled(true);
    uint64_t on_ns = bestOf(bank, buffer, reps);

    support::setMetricsEnabled(false);
    support::setTraceEnabled(false);

    double ratio = off_ns > 0 ? static_cast<double>(on_ns) /
                                    static_cast<double>(off_ns)
                              : 1.0;
    double percent = (ratio - 1.0) * 100.0;

    // Server scenario: per-request latency with request-scoped
    // tracing off vs fully on.
    constexpr int serve_reps = 3, serve_requests = 6;
    std::cout << "\nserver scenario: " << serve_requests
              << " eval requests/rep, best of " << serve_reps
              << " (request-scoped tracing off vs on)\n";
    support::setMetricsEnabled(false);
    support::setTraceEnabled(false);
    uint64_t serve_off_ns =
        serveBestOf(app_name, serve_reps, serve_requests);
    support::setMetricsEnabled(true);
    support::setTraceEnabled(true);
    uint64_t serve_on_ns =
        serveBestOf(app_name, serve_reps, serve_requests);
    support::setMetricsEnabled(false);
    support::setTraceEnabled(false);
    double serve_percent =
        serve_off_ns > 0
            ? (static_cast<double>(serve_on_ns) /
                   static_cast<double>(serve_off_ns) -
               1.0) * 100.0
            : 0.0;

    // Rank-checker scenario: hot uncontended lock/unlock with the
    // runtime checker off vs on (A/B is meaningful in Debug; in
    // Release both sides run the same checker-free code).
    constexpr int rank_reps = 5;
    std::cout << "\nrank-checker scenario: hot MutexLock loop, "
                 "checker off vs on (compiled "
              << (PICOEVAL_LOCK_RANK_CHECK ? "in" : "out") << ")\n";
    support::lockrank::setLockRankCheckEnabled(false);
    uint64_t rank_off_ns = rankCheckBestOf(rank_reps);
    support::lockrank::setLockRankCheckEnabled(true);
    uint64_t rank_on_ns = rankCheckBestOf(rank_reps);
    double rank_percent =
        rank_off_ns > 0
            ? (static_cast<double>(rank_on_ns) /
                   static_cast<double>(rank_off_ns) -
               1.0) * 100.0
            : 0.0;

    TextTable table("Wall time, instrumentation off vs on");
    table.setHeader({"scenario", "mode", "best ns", "overhead"});
    table.addRow({"simbank sweep", "disabled", std::to_string(off_ns),
                  "-"});
    table.addRow({"simbank sweep", "enabled", std::to_string(on_ns),
                  TextTable::num(percent, 2) + "%"});
    table.addRow({"server request", "disabled",
                  std::to_string(serve_off_ns), "-"});
    table.addRow({"server request", "enabled",
                  std::to_string(serve_on_ns),
                  TextTable::num(serve_percent, 2) + "%"});
    table.addRow({"rankcheck lock/unlock", "disabled",
                  std::to_string(rank_off_ns), "-"});
    table.addRow({"rankcheck lock/unlock", "enabled",
                  std::to_string(rank_on_ns),
                  TextTable::num(rank_percent, 2) + "%"});
    table.print(std::cout);

    bench::BenchReport json("observability_overhead");
    json.setInfo("app", app_name);
    json.setInfo("path", "SimBank::simulate (per-line-size sweeps)");
    json.setMetric("accesses",
                   static_cast<uint64_t>(buffer.accesses().size()));
    json.setMetric("reps", static_cast<uint64_t>(reps));
    json.setMetric("ns.disabled", off_ns);
    json.setMetric("ns.enabled", on_ns);
    json.setMetric("overhead.percent", percent);
    json.setMetric("server.requests",
                   static_cast<uint64_t>(serve_requests));
    json.setMetric("server.ns.disabled", serve_off_ns);
    json.setMetric("server.ns.enabled", serve_on_ns);
    json.setMetric("server.overhead.percent", serve_percent);
    json.setMetric("rankcheck.compiled",
                   static_cast<uint64_t>(PICOEVAL_LOCK_RANK_CHECK));
    json.setMetric("rankcheck.ns.disabled", rank_off_ns);
    json.setMetric("rankcheck.ns.enabled", rank_on_ns);
    json.setMetric("rankcheck.overhead.percent", rank_percent);
    json.addTable(table);
    if (!bench::writeReport(json, json_out))
        return 1;

    // The budget check is advisory on shared CI runners (noise can
    // exceed the instrumentation itself); the JSON carries the truth.
    constexpr double budgetPercent = 2.0;
    double worst = std::max(percent, serve_percent);
    if (worst > budgetPercent) {
        std::cout << "\nWARNING: overhead " << TextTable::num(worst, 2)
                  << "% exceeds the " << budgetPercent
                  << "% budget on this machine\n";
    } else {
        std::cout << "\noverhead within the " << budgetPercent
                  << "% budget\n";
    }
    return 0;
}
