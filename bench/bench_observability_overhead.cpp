/**
 * @file
 * Observability overhead microbench: the instrumentation layer's
 * contract is "zero cost when disabled, negligible when enabled".
 * This bench measures both sides on the hottest instrumented path —
 * the SimBank per-line-size sweeps — by replaying the same captured
 * trace with the registry off and on, and reports the enabled/
 * disabled wall-time ratio (expected well under the 2% budget;
 * instrumentation is per-sweep, not per-access).
 *
 * Emits BENCH_observability_overhead.json with the raw timings so CI
 * archives the ratio next to the run reports.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/BenchCommon.hpp"
#include "dse/Evaluators.hpp"
#include "support/Metrics.hpp"
#include "support/TraceEvents.hpp"

using namespace pico;

namespace
{

/** Wall time of one full sweep set over the buffer, in ns. */
uint64_t
timedSimulate(dse::SimBank &bank, const trace::TraceBuffer &buffer)
{
    uint64_t start = support::monotonicNowNs();
    bank.simulate(buffer, nullptr);
    return support::monotonicNowNs() - start;
}

/** Best-of-N sweep time (min filters scheduler noise). */
uint64_t
bestOf(dse::SimBank &bank, const trace::TraceBuffer &buffer, int reps)
{
    uint64_t best = UINT64_MAX;
    for (int i = 0; i < reps; ++i)
        best = std::min(best, timedSimulate(bank, buffer));
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    const std::string app_name = argc > 1 ? argv[1] : "rasta";
    constexpr int reps = 5;

    std::cout << "observability overhead: SimBank sweeps over '"
              << app_name << "', best of " << reps
              << " (metrics+trace off vs on)\n";

    auto app = bench::buildApp(app_name);
    trace::TraceBuffer buffer;
    for (const auto &a :
         app.traceFor("1111", trace::TraceKind::Instruction))
        buffer(a);

    dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
    dse::SimBank bank(space);

    // Warm up caches and the trace buffer before either side.
    bank.simulate(buffer, nullptr);

    support::setMetricsEnabled(false);
    support::setTraceEnabled(false);
    uint64_t off_ns = bestOf(bank, buffer, reps);

    support::setMetricsEnabled(true);
    support::setTraceEnabled(true);
    uint64_t on_ns = bestOf(bank, buffer, reps);

    support::setMetricsEnabled(false);
    support::setTraceEnabled(false);

    double ratio = off_ns > 0 ? static_cast<double>(on_ns) /
                                    static_cast<double>(off_ns)
                              : 1.0;
    double percent = (ratio - 1.0) * 100.0;

    TextTable table("Sweep wall time, instrumentation off vs on");
    table.setHeader({"mode", "best ns", "overhead"});
    table.addRow({"disabled", std::to_string(off_ns), "-"});
    table.addRow({"enabled", std::to_string(on_ns),
                  TextTable::num(percent, 2) + "%"});
    table.print(std::cout);

    bench::BenchReport json("observability_overhead");
    json.setInfo("app", app_name);
    json.setInfo("path", "SimBank::simulate (per-line-size sweeps)");
    json.setMetric("accesses",
                   static_cast<uint64_t>(buffer.accesses().size()));
    json.setMetric("reps", static_cast<uint64_t>(reps));
    json.setMetric("ns.disabled", off_ns);
    json.setMetric("ns.enabled", on_ns);
    json.setMetric("overhead.percent", percent);
    json.addTable(table);
    if (!bench::writeReport(json, json_out))
        return 1;

    // The budget check is advisory on shared CI runners (noise can
    // exceed the instrumentation itself); the JSON carries the truth.
    constexpr double budgetPercent = 2.0;
    if (percent > budgetPercent) {
        std::cout << "\nWARNING: overhead " << TextTable::num(percent, 2)
                  << "% exceeds the " << budgetPercent
                  << "% budget on this machine\n";
    } else {
        std::cout << "\noverhead within the " << budgetPercent
                  << "% budget\n";
    }
    return 0;
}
