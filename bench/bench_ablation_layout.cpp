/**
 * @file
 * Ablation A2 — the linker's layout claims (section 3.3): profile
 * guided inter-procedural layout improves spatial locality and
 * instruction-cache performance, and packet alignment of branch
 * targets trades slightly larger code for stall-free fetch.
 *
 * For every benchmark, compare I-cache misses and text size with
 * each linker feature toggled.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/CacheSim.hpp"
#include "compiler/Scheduler.hpp"
#include "isa/Assembler.hpp"
#include "isa/InstructionFormat.hpp"
#include "linker/Linker.hpp"
#include "trace/TraceGenerator.hpp"

using namespace pico;

namespace
{

struct LayoutResult
{
    uint64_t misses = 0;
    uint64_t textSize = 0;
};

LayoutResult
evaluate(const ir::Program &prog, const linker::LinkerOptions &opts,
         const cache::CacheConfig &cfg)
{
    auto mdes = machine::MachineDesc::fromName("1111");
    compiler::Scheduler scheduler;
    auto sched = scheduler.schedule(prog, mdes);
    isa::InstructionFormat format(mdes);
    isa::Assembler assembler(format);
    linker::Linker linker(opts);
    auto bin = linker.link(assembler.assemble(prog, sched));

    cache::CacheSim sim(cfg);
    trace::TraceGenerator gen(prog, sched, bin);
    gen.generate(trace::TraceKind::Instruction,
                 [&sim](const trace::Access &a) {
                     sim.access(a.addr);
                 },
                 bench::traceBlocks);
    return {sim.misses(), bin.textSize()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Ablation: linker layout policies "
                 "(1KB direct-mapped I-cache, 1111 reference)\n\n";

    TextTable table("I-cache misses and text size per layout policy");
    table.setHeader({"Benchmark", "full", "no-profile-order",
                     "no-align", "align cost B", "profile gain"});
    for (const auto &spec : workloads::paperSuite()) {
        auto prog = workloads::buildAndProfile(spec,
                                               bench::profileBlocks);
        auto cfg = bench::smallIcache();

        linker::LinkerOptions full;
        linker::LinkerOptions no_profile;
        no_profile.profileGuidedLayout = false;
        linker::LinkerOptions no_align;
        no_align.alignBranchTargets = false;

        auto r_full = evaluate(prog, full, cfg);
        auto r_nop = evaluate(prog, no_profile, cfg);
        auto r_noa = evaluate(prog, no_align, cfg);

        table.addRow(
            {spec.name, std::to_string(r_full.misses),
             std::to_string(r_nop.misses),
             std::to_string(r_noa.misses),
             std::to_string(static_cast<int64_t>(r_full.textSize) -
                            static_cast<int64_t>(r_noa.textSize)),
             TextTable::num(
                 r_full.misses
                     ? static_cast<double>(r_nop.misses) /
                           static_cast<double>(r_full.misses)
                     : 1.0,
                 2)});
    }
    table.print(std::cout);
    std::cout << "\n'profile gain' > 1 means profile-guided function "
                 "ordering reduced misses; 'align cost' is the text "
                 "bytes paid for packet-aligned branch targets.\n";

    bench::BenchReport json("ablation_layout");
    json.setInfo("experiment", "linker layout policy ablation");
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
