/**
 * @file
 * Ablation A3 — section 3.1's decoupling argument: under the
 * inclusion requirement, unified (L2) cache misses may be obtained
 * by simulating the entire address trace, independent of the L1
 * configurations. Compare the decoupled simulation against coupled
 * simulation (L2 sees only L1 misses, back-invalidation enforcing
 * inclusion) across benchmarks and L1 sizes.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/Hierarchy.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Ablation: decoupled vs coupled unified-cache "
                 "simulation (16KB 2-way 64B L2)\n\n";

    TextTable table("L2 misses: decoupled (paper) vs coupled, two "
                    "L1 sizings");
    table.setHeader({"Benchmark", "decoupled", "coupled 1KB L1s",
                     "coupled 16KB L1s", "max delta %"});

    for (const char *name :
         {"085.gcc", "ghostscript", "epic", "pgpencode", "rasta"}) {
        auto app = bench::buildApp(name);
        const auto &trace =
            app.traceFor("1111", trace::TraceKind::Unified);

        cache::HierarchyConfig small;
        small.icache = bench::smallIcache();
        small.dcache = bench::smallDcache();
        small.ucache = bench::smallUcache();
        cache::HierarchyConfig big = small;
        big.icache = bench::largeIcache();
        big.dcache = bench::largeDcache();

        cache::HierarchySim decoupled(small);
        cache::CoupledHierarchySim coupled_small(small);
        cache::CoupledHierarchySim coupled_big(big);
        for (const auto &a : trace) {
            decoupled.access(a);
            coupled_small.access(a);
            coupled_big.access(a);
        }
        auto d = static_cast<double>(decoupled.stats().uMisses);
        auto cs = static_cast<double>(coupled_small.stats().uMisses);
        auto cb = static_cast<double>(coupled_big.stats().uMisses);
        double delta = 0.0;
        if (d > 0) {
            delta = std::max(std::abs(cs - d), std::abs(cb - d)) /
                    d * 100.0;
        }
        table.addRow({name, TextTable::num(d, 0),
                      TextTable::num(cs, 0), TextTable::num(cb, 0),
                      TextTable::num(delta, 1)});
    }
    table.print(std::cout);

    std::cout << "\nSmall deltas justify evaluating the L2 with the "
                 "full trace regardless of the L1 configuration "
                 "(the paper's hierarchical decoupling).\n";

    bench::BenchReport json("ablation_inclusion");
    json.setInfo("experiment",
                 "decoupled vs coupled L2 simulation");
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
