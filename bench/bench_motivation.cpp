/**
 * @file
 * Experiment E1 — paper section 1: the evaluation-cost arithmetic
 * that motivates the whole approach.
 *
 * The paper: with 40 VLIW processors and 20 caches per type,
 * exhaustive per-combination simulation of ghostscript costs
 * 40 x 20 x (2 + 5 + 7) hours = 466 days, versus a handful of
 * reference-trace simulations under the hierarchical scheme. We
 * reproduce the same arithmetic with *measured* per-trace simulation
 * times on the ghostscript analogue, and report both the measured
 * small-scale cost and the projected full-design-space cost.
 */

#include <chrono>
#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/CacheSim.hpp"
#include "dse/CacheSpace.hpp"
#include "dse/Evaluators.hpp"

using namespace pico;

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Section 1 motivation: exhaustive vs hierarchical "
                 "evaluation cost (ghostscript analogue)\n\n";

    auto app = bench::buildApp("ghostscript");
    const int num_processors = 40;
    auto l1_space = dse::CacheSpace::defaultL1Space();
    auto l2_space = dse::CacheSpace::defaultL2Space();
    size_t caches_per_type = l1_space.enumerate().size();

    // Measure one per-configuration simulation of each trace type.
    auto t0 = std::chrono::steady_clock::now();
    app.simulate("1111", trace::TraceKind::Data,
                 bench::smallDcache());
    double t_data = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    app.simulate("1111", trace::TraceKind::Instruction,
                 bench::smallIcache());
    double t_instr = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    app.simulate("1111", trace::TraceKind::Unified,
                 bench::smallUcache());
    double t_unified = seconds(t0);

    double per_processor = t_data + t_instr + t_unified;
    double exhaustive = num_processors *
                        static_cast<double>(caches_per_type) *
                        per_processor;

    // Hierarchical cost: one single-pass run per line size per cache
    // type, on the reference trace only.
    t0 = std::chrono::steady_clock::now();
    dse::IcacheEvaluator ieval(l1_space, bench::iGranule);
    ieval.evaluate([&app](const dse::TraceSink &sink) {
        for (const auto &a :
             app.traceFor("1111", trace::TraceKind::Instruction))
            sink(a);
    });
    dse::DcacheEvaluator deval(l1_space);
    deval.evaluate([&app](const dse::TraceSink &sink) {
        for (const auto &a :
             app.traceFor("1111", trace::TraceKind::Data))
            sink(a);
    });
    dse::UcacheEvaluator ueval(l2_space, bench::uGranule);
    ueval.evaluate([&app](const dse::TraceSink &sink) {
        for (const auto &a :
             app.traceFor("1111", trace::TraceKind::Unified))
            sink(a);
    });
    double hierarchical = seconds(t0);

    // Every (processor, cache) point is now a model query.
    t0 = std::chrono::steady_clock::now();
    double checksum = 0.0;
    for (int p = 0; p < num_processors; ++p) {
        double d = 1.0 + 2.4 * p / (num_processors - 1);
        for (const auto &cfg : l1_space.enumerate())
            checksum += ieval.misses(cfg, d);
        for (const auto &cfg : l2_space.enumerate())
            checksum += ueval.misses(cfg, d);
    }
    double queries = seconds(t0);

    TextTable table("Evaluation cost");
    table.setHeader({"strategy", "trace simulations", "time (s)"});
    table.addRow({"exhaustive (40 proc x " +
                      std::to_string(caches_per_type) +
                      " caches x 3 types, projected)",
                  std::to_string(num_processors * caches_per_type * 3),
                  TextTable::num(exhaustive, 1)});
    table.addRow(
        {"hierarchical (single-pass per line size, 1 processor)",
         std::to_string(ieval.bank().simRuns() + 5 + 6),
         TextTable::num(hierarchical, 1)});
    table.addRow({"+ all 40x" + std::to_string(caches_per_type) +
                      " model queries",
                  "0", TextTable::num(queries, 2)});
    table.print(std::cout);

    std::cout << "\nSpeedup: "
              << TextTable::num(
                     exhaustive / (hierarchical + queries), 0)
              << "x (paper: 466 days -> hours; checksum "
              << TextTable::num(checksum, 0) << ")\n";

    bench::BenchReport json("motivation");
    json.setInfo("experiment",
                 "exhaustive vs hierarchical evaluation cost");
    json.setMetric("seconds.exhaustive.projected", exhaustive);
    json.setMetric("seconds.hierarchical", hierarchical);
    json.setMetric("seconds.model.queries", queries);
    json.setMetric("speedup", exhaustive / (hierarchical + queries));
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
