/**
 * @file
 * Experiment E3 — paper Table 2: relative data-cache miss rates for
 * the small (1 KB direct-mapped) and large (16 KB 2-way) data caches
 * across the 1111/2111/3221/4221/6332 processors, all benchmarks.
 *
 * Tests assumption 1 of the dilation model: the data trace (and so
 * the data-cache misses) barely changes across processors. In the
 * paper most entries sit near 1.0, with the small direct-mapped
 * cache noisier than the large cache.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"

using namespace pico;

namespace
{

void
report(const std::vector<bench::AppContext> &suite,
       const cache::CacheConfig &cfg, const std::string &title,
       bench::BenchReport &out)
{
    TextTable table(title);
    std::vector<std::string> header = {"Benchmark"};
    for (const auto &m : bench::paperMachines)
        header.push_back(m);
    table.setHeader(header);

    for (const auto &app : suite) {
        auto ref = static_cast<double>(
            app.simulate("1111", trace::TraceKind::Data, cfg));
        std::vector<std::string> row = {app.name()};
        for (const auto &m : bench::paperMachines) {
            auto misses = static_cast<double>(
                app.simulate(m, trace::TraceKind::Data, cfg));
            row.push_back(
                TextTable::num(ref > 0 ? misses / ref : 1.0, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
    out.addTable(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Table 2: relative data cache miss rates "
                 "(normalized to the 1111 reference)\n\n";
    auto suite = bench::buildSuite();
    bench::BenchReport json("table2");
    json.setInfo("experiment",
                 "relative data-cache miss rates vs 1111");
    json.setMetric("benchmarks",
                   static_cast<uint64_t>(suite.size()));
    report(suite, bench::smallDcache(),
           "Relative Data Cache Miss rates (1 KB)", json);
    report(suite, bench::largeDcache(),
           "Relative Data Cache Miss rates (16 KB)", json);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
