/**
 * @file
 * Experiment E12 — validating the baseline AHH model itself
 * (section 2 reports mean errors of ~4% for direct-mapped 4B-line
 * caches rising to ~22% for set-associative 16B-line caches).
 *
 * From one simulated anchor configuration and the fitted trace
 * parameters, equation 4.7 predicts the misses of every other cache
 * with the same line size; we compare those predictions against
 * single-pass simulation truth, per line size.
 */

#include <cmath>
#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/SinglePassSim.hpp"
#include "core/AhhModel.hpp"
#include "core/TraceModel.hpp"
#include "support/Stats.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "AHH model validation: eq 4.7 scaling from one "
                 "anchor cache vs simulation (instruction traces)\n\n";

    TextTable table("Mean relative error of scaled miss estimates");
    table.setHeader({"Benchmark", "L=4B DM", "L=16B DM", "L=16B SA",
                     "L=32B SA"});

    RunningStat col[4];
    for (const auto &app : bench::buildSuite()) {
        const auto &trace =
            app.traceFor("1111", trace::TraceKind::Instruction);
        core::ItraceModeler modeler(bench::iGranule);
        for (const auto &a : trace)
            modeler.access(a);
        auto params = modeler.params();

        auto evaluate = [&](uint32_t line, bool associative) {
            cache::SinglePassSim sim(line, 16, 512, 4);
            for (const auto &a : trace)
                sim.access(a.addr);

            // Anchor: the middle direct-mapped configuration.
            uint32_t anchor_sets = 128;
            double anchor_misses =
                static_cast<double>(sim.misses(anchor_sets, 1));
            double uL = params.uLines(line / 4.0);
            double anchor_coll =
                core::ahh::collisions(uL, anchor_sets, 1);

            RunningStat err;
            for (uint32_t sets = 16; sets <= 512; sets *= 2) {
                for (uint32_t assoc = 1;
                     assoc <= (associative ? 4u : 1u); ++assoc) {
                    if (sets == anchor_sets && assoc == 1)
                        continue;
                    double coll =
                        core::ahh::collisions(uL, sets, assoc);
                    double est = core::ahh::scaleMisses(
                        anchor_misses, anchor_coll, coll);
                    auto truth = static_cast<double>(
                        sim.misses(sets, assoc));
                    if (truth > 100.0) {
                        err.add(std::abs(est - truth) / truth);
                    }
                }
            }
            return err.mean();
        };

        double e4 = evaluate(4, false);
        double e16dm = evaluate(16, false);
        double e16sa = evaluate(16, true);
        double e32sa = evaluate(32, true);
        col[0].add(e4);
        col[1].add(e16dm);
        col[2].add(e16sa);
        col[3].add(e32sa);
        table.addRow({app.name(), TextTable::num(e4, 3),
                      TextTable::num(e16dm, 3),
                      TextTable::num(e16sa, 3),
                      TextTable::num(e32sa, 3)});
    }
    table.addRow({"(mean)", TextTable::num(col[0].mean(), 3),
                  TextTable::num(col[1].mean(), 3),
                  TextTable::num(col[2].mean(), 3),
                  TextTable::num(col[3].mean(), 3)});
    table.print(std::cout);

    std::cout << "\nPaper section 2 (after [11]): ~4% error for "
                 "direct-mapped 4B-line caches, degrading as line "
                 "size and associativity grow — which is why the "
                 "dilation model only uses the AHH model to "
                 "interpolate between simulations, never to replace "
                 "them.\n";

    bench::BenchReport json("ahh_validation");
    json.setInfo("experiment", "baseline AHH model validation");
    json.setMetric("err.mean.l4.dm", col[0].mean());
    json.setMetric("err.mean.l16.dm", col[1].mean());
    json.setMetric("err.mean.l16.sa", col[2].mean());
    json.setMetric("err.mean.l32.sa", col[3].mean());
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
