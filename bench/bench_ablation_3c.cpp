/**
 * @file
 * Ablation A4 — why dilation hurts: a three-C decomposition of the
 * instruction-cache misses of the dilated reference trace. The AHH
 * model treats dilation as extra *collisions* (interference); this
 * bench verifies that the miss growth indeed comes from conflict and
 * capacity interference rather than compulsory traffic.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/MissClassifier.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Ablation: three-C decomposition of dilated-trace "
                 "I-cache misses (085.gcc analogue, 1KB DM)\n\n";

    auto app = bench::buildApp("085.gcc");
    auto cfg = bench::smallIcache();

    TextTable table("Miss breakdown vs dilation");
    table.setHeader({"dilation", "compulsory", "capacity",
                     "conflict", "total"});
    for (double d : {1.0, 1.5, 2.0, 2.5, 3.0}) {
        cache::MissClassifier mc(cfg);
        app.dilatedTrace(trace::TraceKind::Instruction, d,
                         [&mc](const trace::Access &a) {
                             mc.access(a.addr);
                         });
        const auto &b = mc.breakdown();
        table.addRow({TextTable::num(d, 1),
                      std::to_string(b.compulsory),
                      std::to_string(b.capacity),
                      std::to_string(b.conflict),
                      std::to_string(b.totalMisses())});
    }
    table.print(std::cout);

    std::cout << "\nCompulsory misses grow only with the code "
                 "footprint; the interference terms, which the AHH "
                 "collision model captures, carry the growth.\n";

    bench::BenchReport json("ablation_3c");
    json.setInfo("experiment",
                 "three-C decomposition under dilation (085.gcc)");
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
