#include "bench/BenchCommon.hpp"

#include <fstream>
#include <sstream>

#include "cache/CacheSim.hpp"
#include "core/DilationModel.hpp"
#include "core/TraceModel.hpp"
#include "linker/LinkedBinary.hpp"
#include "machine/MachineDesc.hpp"
#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "support/RunReport.hpp"
#include "trace/TraceGenerator.hpp"

namespace pico::bench
{

const std::vector<std::string> paperMachines = {"1111", "2111", "3221",
                                                "4221", "6332"};

cache::CacheConfig
smallIcache()
{
    return cache::CacheConfig::fromSize(1024, 1, 32);
}

cache::CacheConfig
largeIcache()
{
    return cache::CacheConfig::fromSize(16384, 2, 32);
}

cache::CacheConfig
smallDcache()
{
    return cache::CacheConfig::fromSize(1024, 1, 32);
}

cache::CacheConfig
largeDcache()
{
    return cache::CacheConfig::fromSize(16384, 2, 32);
}

cache::CacheConfig
smallUcache()
{
    return cache::CacheConfig::fromSize(16384, 2, 64);
}

cache::CacheConfig
largeUcache()
{
    return cache::CacheConfig::fromSize(131072, 4, 64);
}

AppContext::AppContext(const workloads::AppSpec &spec)
    : name_(spec.name)
{
    prog_ = workloads::buildAndProfile(spec, profileBlocks);
    for (const auto &m : paperMachines) {
        builds_.emplace(m, workloads::buildFor(
                               prog_, machine::MachineDesc::fromName(m)));
    }
}

const workloads::MachineBuild &
AppContext::build(const std::string &m) const
{
    auto it = builds_.find(m);
    fatalIf(it == builds_.end(), "unknown machine '", m, "'");
    return it->second;
}

double
AppContext::dilation(const std::string &m) const
{
    return linker::textDilation(build(m).bin, build("1111").bin);
}

const std::vector<trace::Access> &
AppContext::traceFor(const std::string &m, trace::TraceKind kind) const
{
    auto key = std::make_pair(m, static_cast<int>(kind));
    auto it = traces_.find(key);
    if (it != traces_.end())
        return it->second;
    const auto &b = build(m);
    trace::TraceGenerator gen(prog_, b.sched, b.bin);
    auto trace = gen.collect(kind, traceBlocks);
    return traces_.emplace(key, std::move(trace)).first->second;
}

uint64_t
AppContext::dilatedTrace(
    trace::TraceKind kind, double d,
    const std::function<void(const trace::Access &)> &sink) const
{
    const auto &b = build("1111");
    trace::TraceGenerator gen(prog_, b.sched, b.bin);
    return gen.generateDilated(kind, d, sink, traceBlocks);
}

uint64_t
AppContext::simulate(const std::string &m, trace::TraceKind kind,
                     const cache::CacheConfig &cfg) const
{
    cache::CacheSim sim(cfg);
    for (const auto &a : traceFor(m, kind))
        sim.access(a.addr, a.isWrite);
    return sim.misses();
}

uint64_t
AppContext::simulateDilated(trace::TraceKind kind, double d,
                            const cache::CacheConfig &cfg) const
{
    cache::CacheSim sim(cfg);
    dilatedTrace(kind, d, [&sim](const trace::Access &a) {
        sim.access(a.addr, a.isWrite);
    });
    return sim.misses();
}

void
AppContext::fitParams() const
{
    if (paramsReady_)
        return;
    core::ItraceModeler imod(iGranule);
    for (const auto &a :
         traceFor("1111", trace::TraceKind::Instruction))
        imod.access(a);
    iParams_ = imod.params();

    core::UtraceModeler umod(uGranule);
    for (const auto &a : traceFor("1111", trace::TraceKind::Unified))
        umod.access(a);
    uiParams_ = umod.instrParams();
    udParams_ = umod.dataParams();
    paramsReady_ = true;
}

const core::ComponentParams &
AppContext::instrParams() const
{
    fitParams();
    return iParams_;
}

const core::ComponentParams &
AppContext::unifiedInstrParams() const
{
    fitParams();
    return uiParams_;
}

const core::ComponentParams &
AppContext::unifiedDataParams() const
{
    fitParams();
    return udParams_;
}

cache::CacheConfig
evalConfig(EvalCache which)
{
    switch (which) {
      case EvalCache::SmallI:
        return smallIcache();
      case EvalCache::LargeI:
        return largeIcache();
      case EvalCache::SmallU:
        return smallUcache();
      case EvalCache::LargeU:
        return largeUcache();
    }
    panic("unknown EvalCache");
}

bool
isUnified(EvalCache which)
{
    return which == EvalCache::SmallU || which == EvalCache::LargeU;
}

MissTriple
evaluateTriple(const AppContext &app, const std::string &machine,
               EvalCache which)
{
    auto cfg = evalConfig(which);
    auto kind = isUnified(which) ? trace::TraceKind::Unified
                                 : trace::TraceKind::Instruction;
    double d = app.dilation(machine);

    MissTriple out;
    out.reference =
        static_cast<double>(app.simulate("1111", kind, cfg));
    out.actual = static_cast<double>(app.simulate(machine, kind, cfg));
    out.dilated =
        static_cast<double>(app.simulateDilated(kind, d, cfg));

    core::DilationModel model(app.instrParams(),
                              app.unifiedInstrParams(),
                              app.unifiedDataParams());
    if (isUnified(which)) {
        out.estimated =
            model.estimateUcacheMisses(cfg, d, out.reference);
    } else {
        core::MissOracle oracle =
            [&app](const cache::CacheConfig &c) {
                return static_cast<double>(app.simulate(
                    "1111", trace::TraceKind::Instruction, c));
            };
        out.estimated = model.estimateIcacheMisses(cfg, d, oracle);
    }
    return out;
}

std::vector<AppContext>
buildSuite()
{
    std::vector<AppContext> suite;
    for (const auto &spec : workloads::paperSuite())
        suite.emplace_back(spec);
    return suite;
}

AppContext
buildApp(const std::string &name)
{
    return AppContext(workloads::specByName(name));
}

// --- BenchReport -------------------------------------------------------

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void
BenchReport::addTable(const TextTable &table)
{
    tables_.push_back(
        Table{table.title(), table.header(), table.rowData()});
}

void
BenchReport::setMetric(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    metrics_[key] = oss.str();
}

void
BenchReport::setMetric(const std::string &key, uint64_t value)
{
    metrics_[key] = std::to_string(value);
}

void
BenchReport::setInfo(const std::string &key, const std::string &value)
{
    info_[key] = value;
}

std::string
BenchReport::toJson() const
{
    using support::jsonEscape;
    std::ostringstream os;
    os << "{\"schema\":\"" << schema << "\",\"bench\":\""
       << jsonEscape(name_) << "\",\"git\":\""
       << jsonEscape(support::buildVersion()) << "\",\"info\":{";
    bool first = true;
    for (const auto &[key, value] : info_) {
        os << (first ? "" : ",") << '"' << jsonEscape(key)
           << "\":\"" << jsonEscape(value) << '"';
        first = false;
    }
    os << "},\"metrics\":{";
    first = true;
    for (const auto &[key, value] : metrics_) {
        // Values are pre-formatted JSON numbers.
        os << (first ? "" : ",") << '"' << jsonEscape(key)
           << "\":" << value;
        first = false;
    }
    os << "},\"tables\":[";
    for (size_t t = 0; t < tables_.size(); ++t) {
        const auto &table = tables_[t];
        os << (t ? "," : "") << "{\"title\":\""
           << jsonEscape(table.title) << "\",\"header\":[";
        for (size_t i = 0; i < table.header.size(); ++i)
            os << (i ? "," : "") << '"' << jsonEscape(table.header[i])
               << '"';
        os << "],\"rows\":[";
        for (size_t r = 0; r < table.rows.size(); ++r) {
            os << (r ? "," : "") << '[';
            for (size_t i = 0; i < table.rows[r].size(); ++i)
                os << (i ? "," : "") << '"'
                   << jsonEscape(table.rows[r][i]) << '"';
            os << ']';
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

bool
BenchReport::write(const std::string &dir) const
{
    return writeTo(dir + "/BENCH_" + name_ + ".json");
}

bool
BenchReport::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write bench report '", path, "'");
        return false;
    }
    out << toJson() << '\n';
    out.flush();
    if (!out) {
        warn("writing bench report '", path, "' failed");
        return false;
    }
    inform("bench report written to ", path);
    return true;
}

std::string
extractJsonOutArg(int &argc, char **argv)
{
    const std::string flag = "--json-out";
    std::string path;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == flag && i + 1 < argc) {
            path = argv[++i];
            continue;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            path = arg.substr(flag.size() + 1);
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    argv[argc] = nullptr;
    return path;
}

bool
writeReport(const BenchReport &report, const std::string &json_out)
{
    return json_out.empty() ? report.write()
                            : report.writeTo(json_out);
}

} // namespace pico::bench
