/**
 * @file
 * Shared context for the experiment benches: builds the benchmark
 * suite for the paper's machines, caches traces, and provides the
 * simulate/estimate helpers every table and figure needs.
 */

#ifndef PICO_BENCH_BENCH_COMMON_HPP
#define PICO_BENCH_BENCH_COMMON_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cache/CacheConfig.hpp"
#include "core/TraceModel.hpp"
#include "ir/Program.hpp"
#include "support/Table.hpp"
#include "trace/Access.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::bench
{

/** Machines of the paper's experiments, reference first. */
extern const std::vector<std::string> paperMachines;

/** Block-entry budget used for all experiment traces. */
constexpr uint64_t traceBlocks = 40000;
/** Block-entry budget used for profiling. */
constexpr uint64_t profileBlocks = 40000;
/** Granule sizes (paper section 5.2). */
constexpr uint64_t iGranule = 10000;
constexpr uint64_t uGranule = 100000;

/** The paper's four evaluation cache configurations (section 6). */
cache::CacheConfig smallIcache();  ///< 1KB direct-mapped, 32B lines
cache::CacheConfig largeIcache();  ///< 16KB 2-way, 32B lines
cache::CacheConfig smallDcache();  ///< 1KB direct-mapped, 32B lines
cache::CacheConfig largeDcache();  ///< 16KB 2-way, 32B lines
cache::CacheConfig smallUcache();  ///< 16KB 2-way, 64B lines
cache::CacheConfig largeUcache();  ///< 128KB 4-way, 64B lines

/** One application compiled for every machine in the study. */
class AppContext
{
  public:
    explicit AppContext(const workloads::AppSpec &spec);

    const std::string &name() const { return name_; }
    const ir::Program &program() const { return prog_; }

    /** Build (schedule + binary) for a machine name. */
    const workloads::MachineBuild &build(const std::string &m) const;

    /** Text dilation of a machine w.r.t. the 1111 reference. */
    double dilation(const std::string &m) const;

    /**
     * Address trace of a machine, cached after first use.
     * @param m machine name
     * @param kind trace kind
     */
    const std::vector<trace::Access> &
    traceFor(const std::string &m, trace::TraceKind kind) const;

    /**
     * Reference trace with the instruction component dilated by d
     * (not cached; streams into the sink).
     */
    uint64_t dilatedTrace(
        trace::TraceKind kind, double d,
        const std::function<void(const trace::Access &)> &sink) const;

    /** Misses of one cache on a machine's trace. */
    uint64_t simulate(const std::string &m, trace::TraceKind kind,
                      const cache::CacheConfig &cfg) const;

    /** Misses of one cache on the dilated reference trace. */
    uint64_t simulateDilated(trace::TraceKind kind, double d,
                             const cache::CacheConfig &cfg) const;

    /** AHH parameters of the reference instruction trace. */
    const core::ComponentParams &instrParams() const;
    /** AHH parameters of the reference unified trace components. */
    const core::ComponentParams &unifiedInstrParams() const;
    const core::ComponentParams &unifiedDataParams() const;

  private:
    void fitParams() const;

    std::string name_;
    ir::Program prog_;
    std::map<std::string, workloads::MachineBuild> builds_;
    mutable std::map<std::pair<std::string, int>,
                     std::vector<trace::Access>>
        traces_;
    mutable bool paramsReady_ = false;
    mutable core::ComponentParams iParams_;
    mutable core::ComponentParams uiParams_;
    mutable core::ComponentParams udParams_;
};

/** Which of the paper's four evaluation caches to use. */
enum class EvalCache
{
    SmallI, ///< 1KB direct-mapped I-cache
    LargeI, ///< 16KB 2-way I-cache
    SmallU, ///< 16KB 2-way unified cache
    LargeU, ///< 128KB 4-way unified cache
};

/** The three bars of figure 7 / table 4 for one design point. */
struct MissTriple
{
    /** Misses simulating the target machine's own trace. */
    double actual = 0.0;
    /** Misses simulating the dilated reference trace. */
    double dilated = 0.0;
    /** Misses from the dilation model (no extra simulation). */
    double estimated = 0.0;
    /** Misses of the reference machine (normalization base). */
    double reference = 0.0;
};

/** Configuration object for an EvalCache selector. */
cache::CacheConfig evalConfig(EvalCache which);

/** True for the unified-cache selectors. */
bool isUnified(EvalCache which);

/**
 * Compute actual / dilated / estimated misses for one application,
 * machine, and evaluation cache (the cell of table 4).
 */
MissTriple evaluateTriple(const AppContext &app,
                          const std::string &machine,
                          EvalCache which);

/** Build contexts for the whole suite (ten applications). */
std::vector<AppContext> buildSuite();

/** Build one context by benchmark name. */
AppContext buildApp(const std::string &name);

/**
 * Machine-readable bench results: collects the tables and scalar
 * metrics a bench prints and writes them as one deterministic JSON
 * document (`BENCH_<name>.json` by default), so CI can archive and
 * diff experiment results instead of scraping stdout.
 */
class BenchReport
{
  public:
    /** Schema tag written into every document. */
    static constexpr const char *schema = "picoeval-bench-v1";

    /** @param name bench identifier (e.g. "table2"). */
    explicit BenchReport(std::string name);

    /** Record a finished table (call after the rows are added). */
    void addTable(const TextTable &table);

    /** Record one scalar result. */
    void setMetric(const std::string &key, double value);
    void setMetric(const std::string &key, uint64_t value);

    /** Attach one configuration fact (string-valued). */
    void setInfo(const std::string &key, const std::string &value);

    /** Render the document (sorted keys, fixed formatting). */
    std::string toJson() const;

    /**
     * Write `BENCH_<name>.json` into `dir` (default: the working
     * directory). @return false (after a warn()) on I/O failure.
     */
    bool write(const std::string &dir = ".") const;

    /**
     * Write the document to an explicit file path (the
     * `--json-out <path>` contract every bench binary honors).
     * @return false (after a warn()) on I/O failure
     */
    bool writeTo(const std::string &path) const;

  private:
    struct Table
    {
        std::string title;
        std::vector<std::string> header;
        std::vector<std::vector<std::string>> rows;
    };

    std::string name_;
    std::vector<Table> tables_;
    std::map<std::string, std::string> metrics_;
    std::map<std::string, std::string> info_;
};

/**
 * Extract a `--json-out <path>` (or `--json-out=<path>`) argument
 * and remove it from argv, so argument parsers that reject unknown
 * flags (google-benchmark) never see it.
 * @return the path, or "" when the flag is absent
 */
std::string extractJsonOutArg(int &argc, char **argv);

/**
 * Write a finished report honoring the uniform `--json-out` flag:
 * to `json_out` when non-empty, else `BENCH_<name>.json` in the
 * working directory.
 * @return false (after a warn()) on I/O failure
 */
bool writeReport(const BenchReport &report,
                 const std::string &json_out);

} // namespace pico::bench

#endif // PICO_BENCH_BENCH_COMMON_HPP
