/**
 * @file
 * Tentpole benchmark — columnar trace replay versus the legacy
 * row-wise replay it replaced.
 *
 * BM_LegacyLineSweeps carries a verbatim copy of the pre-columnar
 * work unit: an array-of-structs access buffer replayed once per
 * line size through the old vector-of-vectors LRU-stack simulator
 * (the exact algorithm that used to back BM_ParallelLineSweeps).
 * BM_ColumnarLineSweeps runs the same sweep through the production
 * path: delta-encoded columnar blocks decoded once per block and fed
 * to every line-size simulator in the SoA single-pass bank, serially
 * fused (jobs = 1) and fanned out on a pool (jobs = 4).
 *
 * Before timing anything, main() proves the two paths produce
 * bit-identical miss counts for every covered configuration — a
 * faster wrong answer would be worthless.
 *
 * The report (BENCH_columnar_replay.json, honoring --json-out)
 * carries the gate-tracked ratios:
 *   columnar_vs_legacy_speedup   fused columnar vs legacy serial
 *                                (the tentpole's >= 2x claim)
 *   columnar_parallel_speedup_4j fused serial vs 4-job columnar
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/BenchCommon.hpp"
#include "dse/CacheSpace.hpp"
#include "dse/Evaluators.hpp"
#include "support/BitUtils.hpp"
#include "support/Random.hpp"
#include "support/ThreadPool.hpp"
#include "trace/ColumnarTrace.hpp"

using namespace pico;

namespace
{

/**
 * Verbatim copy of the pre-columnar SinglePassSim inner machinery:
 * one truncated LRU stack per set as a std::vector, found by linear
 * scan, updated by erase + insert. Kept here, not in src/, so the
 * benchmark keeps measuring the same baseline even as the production
 * simulator evolves.
 */
class LegacySinglePassSim
{
  public:
    LegacySinglePassSim(uint32_t line_bytes, uint32_t min_sets,
                        uint32_t max_sets, uint32_t max_assoc)
        : lineBytes_(line_bytes), minSets_(min_sets),
          maxAssoc_(max_assoc)
    {
        size_t levels =
            log2Floor(max_sets) - log2Floor(min_sets) + 1;
        stacks_.resize(levels);
        hist_.resize(levels);
        for (size_t lv = 0; lv < levels; ++lv) {
            stacks_[lv].resize(static_cast<size_t>(minSets_) << lv);
            hist_[lv].assign(maxAssoc_, 0);
        }
    }

    void
    access(uint64_t addr)
    {
        ++accesses_;
        uint64_t line = addr / lineBytes_;
        for (size_t lv = 0; lv < stacks_.size(); ++lv) {
            uint64_t sets = static_cast<uint64_t>(minSets_) << lv;
            auto &stack = stacks_[lv][line & (sets - 1)];

            size_t depth = stack.size();
            for (size_t d = 0; d < stack.size(); ++d) {
                if (stack[d] == line) {
                    depth = d;
                    break;
                }
            }
            if (depth < stack.size()) {
                hist_[lv][depth] += 1;
                stack.erase(stack.begin() +
                            static_cast<ptrdiff_t>(depth));
            } else if (stack.size() >= maxAssoc_) {
                stack.pop_back();
            }
            stack.insert(stack.begin(), line);
        }
    }

    void
    replay(const std::vector<trace::Access> &buffer)
    {
        for (const auto &a : buffer)
            access(a.addr);
    }

    uint64_t
    misses(uint32_t sets, uint32_t assoc) const
    {
        const auto &hist =
            hist_[log2Floor(sets) - log2Floor(minSets_)];
        uint64_t hits = 0;
        for (uint32_t d = 0; d < assoc; ++d)
            hits += hist[d];
        return accesses_ - hits;
    }

  private:
    uint32_t lineBytes_;
    uint32_t minSets_;
    uint32_t maxAssoc_;
    uint64_t accesses_ = 0;
    std::vector<std::vector<std::vector<uint64_t>>> stacks_;
    std::vector<std::vector<uint64_t>> hist_;
};

dse::CacheSpace
sweepSpace()
{
    dse::CacheSpace space;
    space.sizesBytes = {2048, 4096, 8192, 16384};
    space.assocs = {1, 2, 4};
    space.lineSizes = {8, 16, 32, 64};
    return space;
}

/** Line sizes the SimBank covers for this space, 4B word upward. */
std::vector<uint32_t>
coveredLines(const dse::CacheSpace &space)
{
    std::vector<uint32_t> lines;
    for (uint32_t line = dse::SimBank::minCoveredLine;
         line <= space.distinctLineSizes().back(); line *= 2)
        lines.push_back(line);
    return lines;
}

const std::vector<trace::Access> &
sharedRowTrace()
{
    static std::vector<trace::Access> rows = [] {
        Rng rng(20260706);
        std::vector<trace::Access> out;
        out.reserve(200000);
        uint64_t pc = 0;
        for (int i = 0; i < 200000; ++i) {
            if (rng.coin(0.1))
                pc = rng.below(1 << 18) & ~3ULL;
            out.push_back(trace::Access{pc, true, false});
            pc += 4;
        }
        return out;
    }();
    return rows;
}

const trace::ColumnarTraceBuffer &
sharedColumnarTrace()
{
    static trace::ColumnarTraceBuffer buffer = [] {
        trace::ColumnarTraceBuffer b;
        for (const auto &a : sharedRowTrace())
            b(a);
        return b;
    }();
    return buffer;
}

void
BM_LegacyLineSweeps(benchmark::State &state)
{
    auto space = sweepSpace();
    const auto lines = coveredLines(space);
    const auto &rows = sharedRowTrace();
    for (auto _ : state) {
        uint64_t total = 0;
        for (uint32_t line : lines) {
            LegacySinglePassSim sim(line, space.minSets(),
                                    space.maxSets(),
                                    space.maxAssoc());
            sim.replay(rows);
            total += sim.misses(space.minSets(), 1);
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * rows.size() * lines.size()));
}

void
BM_ColumnarLineSweeps(benchmark::State &state)
{
    auto space = sweepSpace();
    const auto jobs = static_cast<unsigned>(state.range(0));
    support::ThreadPool pool(jobs - 1);
    const auto &buffer = sharedColumnarTrace();
    for (auto _ : state) {
        dse::SimBank bank(space);
        bank.simulate(buffer, jobs > 1 ? &pool : nullptr);
        benchmark::DoNotOptimize(
            bank.misses(cache::CacheConfig{128, 2, 32}));
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * buffer.size() *
        dse::SimBank(space).simRuns()));
}

/** Harvests every finished run's adjusted real time. */
class HarvestingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const auto &run : runs) {
            if (!run.error_occurred)
                realNs[run.benchmark_name()] =
                    run.GetAdjustedRealTime();
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::map<std::string, double> realNs;
};

std::string
metricKey(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '/' || c == ':')
            c = '.';
    }
    return out;
}

/**
 * Equivalence proof: the legacy and columnar paths must agree, miss
 * count for miss count, over every (line, sets, assoc) the bank
 * covers. Returns the number of mismatching configurations.
 */
int
verifyBitIdentical()
{
    auto space = sweepSpace();
    dse::SimBank bank(space);
    bank.simulate(sharedColumnarTrace(), nullptr);

    int mismatches = 0;
    for (uint32_t line : coveredLines(space)) {
        LegacySinglePassSim legacy(line, space.minSets(),
                                   space.maxSets(),
                                   space.maxAssoc());
        legacy.replay(sharedRowTrace());
        for (uint32_t sets = space.minSets();
             sets <= space.maxSets(); sets *= 2) {
            for (uint32_t assoc = 1; assoc <= space.maxAssoc();
                 ++assoc) {
                cache::CacheConfig cfg{sets, assoc, line};
                auto expect = legacy.misses(sets, assoc);
                auto got = static_cast<uint64_t>(bank.misses(cfg));
                if (expect != got) {
                    std::fprintf(stderr,
                                 "MISMATCH %s: legacy %llu "
                                 "columnar %llu\n",
                                 cfg.name().c_str(),
                                 static_cast<unsigned long long>(
                                     expect),
                                 static_cast<unsigned long long>(
                                     got));
                    ++mismatches;
                }
            }
        }
    }
    return mismatches;
}

} // namespace

BENCHMARK(BM_LegacyLineSweeps);
BENCHMARK(BM_ColumnarLineSweeps)->Arg(1)->Arg(4)->UseRealTime();

int
main(int argc, char **argv)
{
    std::string json_out = bench::extractJsonOutArg(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    if (int bad = verifyBitIdentical(); bad != 0) {
        std::fprintf(stderr,
                     "%d configurations differ between legacy and "
                     "columnar replay; refusing to time a wrong "
                     "answer\n",
                     bad);
        return 1;
    }

    HarvestingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    bench::BenchReport json("columnar_replay");
    json.setInfo("experiment",
                 "columnar fused replay vs legacy row-wise replay");
    for (const auto &[name, ns] : reporter.realNs)
        json.setMetric(metricKey(name) + ".real_ns", ns);

    auto ns = [&](const char *name) {
        auto it = reporter.realNs.find(name);
        return it == reporter.realNs.end() ? 0.0 : it->second;
    };
    double legacy = ns("BM_LegacyLineSweeps");
    double fused = ns("BM_ColumnarLineSweeps/1/real_time");
    double four = ns("BM_ColumnarLineSweeps/4/real_time");
    if (legacy > 0.0 && fused > 0.0)
        json.setMetric("columnar_vs_legacy_speedup", legacy / fused);
    if (fused > 0.0 && four > 0.0)
        json.setMetric("columnar_parallel_speedup_4j", fused / four);

    benchmark::Shutdown();
    return bench::writeReport(json, json_out) ? 0 : 1;
}
