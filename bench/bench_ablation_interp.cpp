/**
 * @file
 * Ablation A1 — section 4.3.1's claim: "A linear interpolation is
 * not suitable because the misses are a very nonlinear function of
 * line size. We use the AHH trace parameters and model to generate
 * the more sophisticated interpolation."
 *
 * For every benchmark and a sweep of dilations whose contracted line
 * size is infeasible, compare three interpolators between the same
 * two simulated endpoints against the dilated-trace ground truth:
 *
 *   linear   — linear in line size,
 *   loglin   — linear in log2(line size),
 *   AHH      — equation 4.12 (linear in modeled collisions).
 */

#include <cmath>
#include <iostream>

#include "bench/BenchCommon.hpp"
#include "core/DilationModel.hpp"
#include "support/Stats.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Ablation: AHH (eq 4.12) vs naive interpolation "
                 "between feasible line sizes\n\n";

    // Dilations with infeasible contracted line sizes for L = 32.
    const double dilations[] = {1.3, 1.6, 1.9, 2.3, 2.7, 3.3};

    TextTable table("Relative error of estimated 1KB I$ misses "
                    "(vs dilated-trace simulation)");
    table.setHeader({"Benchmark", "linear", "loglin", "AHH"});

    RunningStat err_linear, err_loglin, err_ahh;
    auto suite = bench::buildSuite();
    for (const auto &app : suite) {
        RunningStat app_lin, app_log, app_ahh;
        auto cfg = bench::smallIcache();
        core::DilationModel model(app.instrParams(),
                                  app.instrParams(),
                                  app.instrParams());
        core::MissOracle oracle = [&app](const cache::CacheConfig &c) {
            return static_cast<double>(app.simulate(
                "1111", trace::TraceKind::Instruction, c));
        };
        for (double d : dilations) {
            double contracted = cfg.lineBytes / d;
            auto lower = static_cast<uint32_t>(
                uint64_t{1}
                << static_cast<unsigned>(std::log2(contracted)));
            uint32_t upper = lower * 2;
            cache::CacheConfig cl = cfg, cu = cfg;
            cl.lineBytes = lower;
            cu.lineBytes = upper;
            double m_l = oracle(cl), m_u = oracle(cu);

            double t_lin = (contracted - lower) / (upper - lower);
            double linear = m_l + t_lin * (m_u - m_l);
            double t_log = std::log2(contracted / lower);
            double loglin = m_l + t_log * (m_u - m_l);
            double ahh =
                model.estimateIcacheMisses(cfg, d, oracle);

            auto truth = static_cast<double>(app.simulateDilated(
                trace::TraceKind::Instruction, d, cfg));
            if (truth <= 0)
                continue;
            app_lin.add(std::abs(linear - truth) / truth);
            app_log.add(std::abs(loglin - truth) / truth);
            app_ahh.add(std::abs(ahh - truth) / truth);
        }
        err_linear.add(app_lin.mean());
        err_loglin.add(app_log.mean());
        err_ahh.add(app_ahh.mean());
        table.addRow({app.name(), TextTable::num(app_lin.mean(), 3),
                      TextTable::num(app_log.mean(), 3),
                      TextTable::num(app_ahh.mean(), 3)});
    }
    table.addRow({"(mean)", TextTable::num(err_linear.mean(), 3),
                  TextTable::num(err_loglin.mean(), 3),
                  TextTable::num(err_ahh.mean(), 3)});
    table.print(std::cout);

    std::cout << "\nThe AHH collision-based interpolation should "
                 "beat plain linear interpolation in line size, "
                 "matching the paper's design choice.\n";

    bench::BenchReport json("ablation_interp");
    json.setInfo("experiment",
                 "AHH vs naive line-size interpolation");
    json.setMetric("err.mean.linear", err_linear.mean());
    json.setMetric("err.mean.loglin", err_loglin.mean());
    json.setMetric("err.mean.ahh", err_ahh.mean());
    json.addTable(table);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
