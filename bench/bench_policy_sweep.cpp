/**
 * @file
 * Policy-sweep efficiency guard: FIFO and random replacement break
 * LRU's stack property, so the extended design-space axes route to
 * the set-resident simulator (one trace pass covering every
 * geometry of a line size) instead of one CacheSim run per
 * configuration. This bench times both sides over the same trace
 * and geometry grid, cross-checks that every cell's misses and
 * writebacks agree bit-for-bit (the differential guarantee the
 * policy-matrix suite proves in miniature), and reports the
 * one-pass-vs-per-config speedup the CI gate keeps honest.
 *
 * Emits BENCH_policy_sweep.json.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/BenchCommon.hpp"
#include "cache/CacheSim.hpp"
#include "cache/Policy.hpp"
#include "cache/SetResidentSim.hpp"
#include "machine/MachineDesc.hpp"
#include "support/Metrics.hpp"
#include "trace/TraceGenerator.hpp"

using namespace pico;

namespace
{

constexpr uint32_t minSets = 16;
constexpr uint32_t maxSets = 256;
constexpr uint32_t maxAssoc = 4;
constexpr uint32_t lineSizes[] = {16, 32};
constexpr cache::ReplacementPolicy policies[] = {
    cache::ReplacementPolicy::FIFO,
    cache::ReplacementPolicy::Random};

/** One all-geometry pass per (line size, policy), in ns. */
uint64_t
timedSetResident(const std::vector<trace::Access> &refs,
                 std::vector<cache::SetResidentSim> &out)
{
    out.clear();
    uint64_t start = support::monotonicNowNs();
    for (uint32_t line : lineSizes) {
        for (cache::ReplacementPolicy policy : policies) {
            out.emplace_back(line, minSets, maxSets, maxAssoc,
                             policy);
            out.back().replay(refs);
        }
    }
    return support::monotonicNowNs() - start;
}

/** One CacheSim run per configuration over the same grid, in ns. */
uint64_t
timedOracle(const std::vector<trace::Access> &refs,
            std::vector<cache::CacheSim> &out)
{
    out.clear();
    uint64_t start = support::monotonicNowNs();
    for (uint32_t line : lineSizes) {
        for (cache::ReplacementPolicy policy : policies) {
            for (uint32_t sets = minSets; sets <= maxSets;
                 sets *= 2) {
                for (uint32_t assoc = 1; assoc <= maxAssoc;
                     ++assoc) {
                    cache::CacheConfig cfg{
                        sets, assoc, line, 1, policy,
                        cache::WritePolicy::WriteBack};
                    out.emplace_back(cfg);
                    for (const auto &a : refs)
                        out.back()(a);
                }
            }
        }
    }
    return support::monotonicNowNs() - start;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    const std::string app_name =
        argc > 1 ? argv[1] : "matmul-tile8";
    constexpr int reps = 3;
    constexpr uint64_t blocks = 20000;

    std::cout << "policy sweep: data trace of '" << app_name
              << "', all " << "FIFO/random geometries in one pass "
              << "vs one oracle run per config, best of " << reps
              << "\n";

    auto prog = workloads::buildAndProfile(
        workloads::specByName(app_name), bench::profileBlocks);
    auto ref = workloads::buildFor(
        prog, machine::MachineDesc::fromName("1111"));
    trace::TraceGenerator gen(prog, ref.sched, ref.bin);
    std::vector<trace::Access> refs;
    gen.generate(
        trace::TraceKind::Data,
        [&](const trace::Access &a) { refs.push_back(a); }, blocks);

    std::vector<cache::SetResidentSim> fast;
    std::vector<cache::CacheSim> oracle;
    uint64_t fast_ns = UINT64_MAX, oracle_ns = UINT64_MAX;
    for (int i = 0; i < reps; ++i) {
        fast_ns = std::min(fast_ns, timedSetResident(refs, fast));
        oracle_ns = std::min(oracle_ns, timedOracle(refs, oracle));
    }

    // Differential cross-check: the timing comparison is only fair
    // if both sides computed the same answer.
    size_t cell = 0, configs = 0;
    for (const auto &sim : fast) {
        for (uint32_t sets = minSets; sets <= maxSets; sets *= 2) {
            for (uint32_t assoc = 1; assoc <= maxAssoc; ++assoc) {
                const auto &ref_sim = oracle[cell++];
                ++configs;
                if (sim.misses(sets, assoc) != ref_sim.misses() ||
                    sim.writebacks(sets, assoc) !=
                        ref_sim.writebacks()) {
                    std::cerr << "FATAL: set-resident and oracle "
                              << "disagree at sets=" << sets
                              << " assoc=" << assoc << " line="
                              << sim.lineBytes() << " policy="
                              << cache::replacementName(
                                     sim.policy())
                              << "\n";
                    return 1;
                }
            }
        }
    }

    double speedup =
        fast_ns > 0 ? static_cast<double>(oracle_ns) /
                          static_cast<double>(fast_ns)
                    : 1.0;

    TextTable table("All-geometry pass vs per-config oracle");
    table.setHeader({"side", "passes", "best ns"});
    table.addRow({"set-resident", std::to_string(fast.size()),
                  std::to_string(fast_ns)});
    table.addRow({"oracle", std::to_string(configs),
                  std::to_string(oracle_ns)});
    table.print(std::cout);
    std::cout << "\nspeedup: " << TextTable::num(speedup, 2) << "x ("
              << configs << " configs, " << refs.size()
              << " refs)\n";

    bench::BenchReport json("policy_sweep");
    json.setInfo("app", app_name);
    json.setInfo("path", "SetResidentSim::replay vs per-config "
                         "CacheSim");
    json.setMetric("reps", static_cast<uint64_t>(reps));
    json.setMetric("refs", static_cast<uint64_t>(refs.size()));
    json.setMetric("configs", static_cast<uint64_t>(configs));
    json.setMetric("ns.setresident", fast_ns);
    json.setMetric("ns.oracle", oracle_ns);
    json.setMetric("setresident_vs_oracle_speedup", speedup);
    json.addTable(table);
    if (!bench::writeReport(json, json_out))
        return 1;
    return 0;
}
