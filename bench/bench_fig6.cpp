/**
 * @file
 * Experiment E6 — paper Figure 6: estimated versus dilated misses as
 * a function of dilation, for the gcc analogue.
 *
 * Left panel: instruction caches (1 KB direct-mapped and 16 KB
 * 2-way). Right panel: unified caches (16 KB 2-way and 128 KB
 * 4-way). "Dilated" is a real simulation of the dilated reference
 * trace; "Estimated" applies the AHH-based dilation model to
 * reference-trace simulations only. The paper finds the instruction
 * interpolation tracks closely over the whole range while the
 * unified extrapolation degrades for the small cache beyond d = 2.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"
#include "cache/CacheSim.hpp"
#include "core/DilationModel.hpp"
#include "dse/Evaluators.hpp"

using namespace pico;

namespace
{

std::vector<double>
dilationGrid()
{
    std::vector<double> grid;
    for (double d = 1.0; d <= 4.001; d += 0.25)
        grid.push_back(d);
    return grid;
}

void
icachePanel(const bench::AppContext &app, bench::BenchReport &json)
{
    // The oracle simulates the reference trace once per line size
    // via the single-pass bank covering both cache shapes.
    dse::CacheSpace space;
    space.sizesBytes = {1024, 16384};
    space.assocs = {1, 2};
    space.lineSizes = {32};
    dse::IcacheEvaluator eval(space, bench::iGranule);
    eval.evaluate([&app](const dse::TraceSink &sink) {
        for (const auto &a :
             app.traceFor("1111", trace::TraceKind::Instruction))
            sink(a);
    });

    TextTable table("Estimated and Dilated Icache Misses - gcc");
    table.setHeader({"dilation", "est 1KB", "dil 1KB", "est 16KB",
                     "dil 16KB"});
    for (double d : dilationGrid()) {
        auto small = bench::smallIcache();
        auto large = bench::largeIcache();
        table.addRow(
            {TextTable::num(d, 2),
             TextTable::num(eval.misses(small, d), 0),
             TextTable::num(
                 static_cast<double>(app.simulateDilated(
                     trace::TraceKind::Instruction, d, small)),
                 0),
             TextTable::num(eval.misses(large, d), 0),
             TextTable::num(
                 static_cast<double>(app.simulateDilated(
                     trace::TraceKind::Instruction, d, large)),
                 0)});
    }
    table.print(std::cout);
    std::cout << "\n";
    json.addTable(table);
}

void
ucachePanel(const bench::AppContext &app, bench::BenchReport &json)
{
    core::DilationModel model(app.instrParams(),
                              app.unifiedInstrParams(),
                              app.unifiedDataParams());
    auto small = bench::smallUcache();
    auto large = bench::largeUcache();
    auto ref_small = static_cast<double>(
        app.simulate("1111", trace::TraceKind::Unified, small));
    auto ref_large = static_cast<double>(
        app.simulate("1111", trace::TraceKind::Unified, large));

    TextTable table("Estimated and Dilated Ucache Misses - gcc");
    table.setHeader({"dilation", "est 16KB", "dil 16KB", "est 128KB",
                     "dil 128KB"});
    for (double d : dilationGrid()) {
        table.addRow(
            {TextTable::num(d, 2),
             TextTable::num(
                 model.estimateUcacheMisses(small, d, ref_small), 0),
             TextTable::num(
                 static_cast<double>(app.simulateDilated(
                     trace::TraceKind::Unified, d, small)),
                 0),
             TextTable::num(
                 model.estimateUcacheMisses(large, d, ref_large), 0),
             TextTable::num(
                 static_cast<double>(app.simulateDilated(
                     trace::TraceKind::Unified, d, large)),
                 0)});
    }
    table.print(std::cout);
    std::cout << "\n";
    json.addTable(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Figure 6: estimated and dilated misses versus "
                 "text dilation for 085.gcc\n\n";
    auto app = bench::buildApp("085.gcc");
    bench::BenchReport json("fig6");
    json.setInfo("experiment",
                 "estimated vs dilated misses (085.gcc)");
    icachePanel(app, json);
    ucachePanel(app, json);
    return bench::writeReport(json, json_out) ? 0 : 1;
}
