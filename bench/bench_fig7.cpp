/**
 * @file
 * Experiment E7 — paper Figure 7: actual, dilated and estimated
 * misses for the gcc analogue, normalized to the 1111 reference, for
 * the four evaluation caches across the four target processors.
 *
 * The difference between the actual and dilated bars is the error of
 * the uniform-dilation assumption; between dilated and estimated,
 * the error of the AHH-based estimation. The paper's headline: the
 * actual normalized misses climb well above 1 with issue width, and
 * the dilation model captures most of that growth, tracking best for
 * instruction caches.
 */

#include <iostream>

#include "bench/BenchCommon.hpp"

using namespace pico;

namespace
{

void
panel(const bench::AppContext &app, bench::EvalCache which,
      const std::string &title, bench::BenchReport &json)
{
    TextTable table(title);
    table.setHeader({"Processor", "Actual", "Dilated", "Est"});
    for (const auto &m : bench::paperMachines) {
        if (m == "1111")
            continue;
        auto t = bench::evaluateTriple(app, m, which);
        double base = t.reference > 0 ? t.reference : 1.0;
        table.addRow({m, TextTable::num(t.actual / base, 2),
                      TextTable::num(t.dilated / base, 2),
                      TextTable::num(t.estimated / base, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
    json.addTable(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::cout << "Figure 7: actual, dilated and estimated misses "
                 "for 085.gcc (normalized to 1111)\n\n";
    auto app = bench::buildApp("085.gcc");
    bench::BenchReport json("fig7");
    json.setInfo("experiment",
                 "actual vs dilated vs estimated misses (085.gcc)");
    panel(app, bench::EvalCache::SmallI,
          "Misses for 1KB Instruction Cache", json);
    panel(app, bench::EvalCache::LargeI,
          "Misses for 16 KB Instruction Cache", json);
    panel(app, bench::EvalCache::SmallU,
          "Misses for 16 KB Unified Cache", json);
    panel(app, bench::EvalCache::LargeU,
          "Misses for 128 KB Unified Cache", json);
    std::cout << "Note: assuming memory performance is independent "
                 "of issue width would pin every\ncolumn at 1.00; "
                 "the actual values show why dilation must be "
                 "modeled.\n";
    return bench::writeReport(json, json_out) ? 0 : 1;
}
