file(REMOVE_RECURSE
  "CMakeFiles/dilation_study.dir/dilation_study.cpp.o"
  "CMakeFiles/dilation_study.dir/dilation_study.cpp.o.d"
  "dilation_study"
  "dilation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
