# Empty dependencies file for dilation_study.
# This may be replaced when dependencies are built.
