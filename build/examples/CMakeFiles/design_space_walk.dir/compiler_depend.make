# Empty compiler generated dependencies file for design_space_walk.
# This may be replaced when dependencies are built.
