file(REMOVE_RECURSE
  "CMakeFiles/design_space_walk.dir/design_space_walk.cpp.o"
  "CMakeFiles/design_space_walk.dir/design_space_walk.cpp.o.d"
  "design_space_walk"
  "design_space_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
