file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/cache_config_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache_config_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/cache_sim_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache_sim_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/hierarchy_test.cpp.o"
  "CMakeFiles/test_cache.dir/hierarchy_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/miss_classifier_test.cpp.o"
  "CMakeFiles/test_cache.dir/miss_classifier_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/single_pass_test.cpp.o"
  "CMakeFiles/test_cache.dir/single_pass_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/stack_sim_test.cpp.o"
  "CMakeFiles/test_cache.dir/stack_sim_test.cpp.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
