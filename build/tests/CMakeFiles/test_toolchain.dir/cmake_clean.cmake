file(REMOVE_RECURSE
  "CMakeFiles/test_toolchain.dir/hyperblock_test.cpp.o"
  "CMakeFiles/test_toolchain.dir/hyperblock_test.cpp.o.d"
  "CMakeFiles/test_toolchain.dir/ir_test.cpp.o"
  "CMakeFiles/test_toolchain.dir/ir_test.cpp.o.d"
  "CMakeFiles/test_toolchain.dir/isa_test.cpp.o"
  "CMakeFiles/test_toolchain.dir/isa_test.cpp.o.d"
  "CMakeFiles/test_toolchain.dir/linker_test.cpp.o"
  "CMakeFiles/test_toolchain.dir/linker_test.cpp.o.d"
  "CMakeFiles/test_toolchain.dir/machine_test.cpp.o"
  "CMakeFiles/test_toolchain.dir/machine_test.cpp.o.d"
  "CMakeFiles/test_toolchain.dir/scheduler_test.cpp.o"
  "CMakeFiles/test_toolchain.dir/scheduler_test.cpp.o.d"
  "test_toolchain"
  "test_toolchain.pdb"
  "test_toolchain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
