file(REMOVE_RECURSE
  "CMakeFiles/test_dse.dir/evaluation_cache_test.cpp.o"
  "CMakeFiles/test_dse.dir/evaluation_cache_test.cpp.o.d"
  "CMakeFiles/test_dse.dir/evaluators_test.cpp.o"
  "CMakeFiles/test_dse.dir/evaluators_test.cpp.o.d"
  "CMakeFiles/test_dse.dir/pareto_test.cpp.o"
  "CMakeFiles/test_dse.dir/pareto_test.cpp.o.d"
  "CMakeFiles/test_dse.dir/port_model_test.cpp.o"
  "CMakeFiles/test_dse.dir/port_model_test.cpp.o.d"
  "CMakeFiles/test_dse.dir/spacewalker_cache_test.cpp.o"
  "CMakeFiles/test_dse.dir/spacewalker_cache_test.cpp.o.d"
  "test_dse"
  "test_dse.pdb"
  "test_dse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
