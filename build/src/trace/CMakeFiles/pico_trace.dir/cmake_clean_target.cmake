file(REMOVE_RECURSE
  "libpico_trace.a"
)
