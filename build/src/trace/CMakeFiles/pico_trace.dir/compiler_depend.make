# Empty compiler generated dependencies file for pico_trace.
# This may be replaced when dependencies are built.
