file(REMOVE_RECURSE
  "CMakeFiles/pico_trace.dir/ExecutionEngine.cpp.o"
  "CMakeFiles/pico_trace.dir/ExecutionEngine.cpp.o.d"
  "CMakeFiles/pico_trace.dir/TraceFile.cpp.o"
  "CMakeFiles/pico_trace.dir/TraceFile.cpp.o.d"
  "libpico_trace.a"
  "libpico_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
