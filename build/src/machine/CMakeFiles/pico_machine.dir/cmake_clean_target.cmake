file(REMOVE_RECURSE
  "libpico_machine.a"
)
