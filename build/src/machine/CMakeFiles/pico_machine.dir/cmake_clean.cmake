file(REMOVE_RECURSE
  "CMakeFiles/pico_machine.dir/MachineDesc.cpp.o"
  "CMakeFiles/pico_machine.dir/MachineDesc.cpp.o.d"
  "libpico_machine.a"
  "libpico_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
