# Empty dependencies file for pico_machine.
# This may be replaced when dependencies are built.
