file(REMOVE_RECURSE
  "CMakeFiles/pico_cache.dir/CacheConfig.cpp.o"
  "CMakeFiles/pico_cache.dir/CacheConfig.cpp.o.d"
  "CMakeFiles/pico_cache.dir/CacheSim.cpp.o"
  "CMakeFiles/pico_cache.dir/CacheSim.cpp.o.d"
  "CMakeFiles/pico_cache.dir/Hierarchy.cpp.o"
  "CMakeFiles/pico_cache.dir/Hierarchy.cpp.o.d"
  "CMakeFiles/pico_cache.dir/ImpactSim.cpp.o"
  "CMakeFiles/pico_cache.dir/ImpactSim.cpp.o.d"
  "CMakeFiles/pico_cache.dir/MissClassifier.cpp.o"
  "CMakeFiles/pico_cache.dir/MissClassifier.cpp.o.d"
  "CMakeFiles/pico_cache.dir/SinglePassSim.cpp.o"
  "CMakeFiles/pico_cache.dir/SinglePassSim.cpp.o.d"
  "CMakeFiles/pico_cache.dir/StackSim.cpp.o"
  "CMakeFiles/pico_cache.dir/StackSim.cpp.o.d"
  "libpico_cache.a"
  "libpico_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
