file(REMOVE_RECURSE
  "libpico_cache.a"
)
