# Empty dependencies file for pico_cache.
# This may be replaced when dependencies are built.
