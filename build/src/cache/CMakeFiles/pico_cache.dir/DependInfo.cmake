
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/CacheConfig.cpp" "src/cache/CMakeFiles/pico_cache.dir/CacheConfig.cpp.o" "gcc" "src/cache/CMakeFiles/pico_cache.dir/CacheConfig.cpp.o.d"
  "/root/repo/src/cache/CacheSim.cpp" "src/cache/CMakeFiles/pico_cache.dir/CacheSim.cpp.o" "gcc" "src/cache/CMakeFiles/pico_cache.dir/CacheSim.cpp.o.d"
  "/root/repo/src/cache/Hierarchy.cpp" "src/cache/CMakeFiles/pico_cache.dir/Hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/pico_cache.dir/Hierarchy.cpp.o.d"
  "/root/repo/src/cache/ImpactSim.cpp" "src/cache/CMakeFiles/pico_cache.dir/ImpactSim.cpp.o" "gcc" "src/cache/CMakeFiles/pico_cache.dir/ImpactSim.cpp.o.d"
  "/root/repo/src/cache/MissClassifier.cpp" "src/cache/CMakeFiles/pico_cache.dir/MissClassifier.cpp.o" "gcc" "src/cache/CMakeFiles/pico_cache.dir/MissClassifier.cpp.o.d"
  "/root/repo/src/cache/SinglePassSim.cpp" "src/cache/CMakeFiles/pico_cache.dir/SinglePassSim.cpp.o" "gcc" "src/cache/CMakeFiles/pico_cache.dir/SinglePassSim.cpp.o.d"
  "/root/repo/src/cache/StackSim.cpp" "src/cache/CMakeFiles/pico_cache.dir/StackSim.cpp.o" "gcc" "src/cache/CMakeFiles/pico_cache.dir/StackSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pico_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
