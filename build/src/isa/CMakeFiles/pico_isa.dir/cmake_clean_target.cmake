file(REMOVE_RECURSE
  "libpico_isa.a"
)
