file(REMOVE_RECURSE
  "CMakeFiles/pico_isa.dir/Assembler.cpp.o"
  "CMakeFiles/pico_isa.dir/Assembler.cpp.o.d"
  "CMakeFiles/pico_isa.dir/InstructionFormat.cpp.o"
  "CMakeFiles/pico_isa.dir/InstructionFormat.cpp.o.d"
  "libpico_isa.a"
  "libpico_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
