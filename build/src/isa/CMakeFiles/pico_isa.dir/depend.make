# Empty dependencies file for pico_isa.
# This may be replaced when dependencies are built.
