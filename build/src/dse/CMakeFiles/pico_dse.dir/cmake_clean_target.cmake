file(REMOVE_RECURSE
  "libpico_dse.a"
)
