file(REMOVE_RECURSE
  "CMakeFiles/pico_dse.dir/CacheSpace.cpp.o"
  "CMakeFiles/pico_dse.dir/CacheSpace.cpp.o.d"
  "CMakeFiles/pico_dse.dir/EvaluationCache.cpp.o"
  "CMakeFiles/pico_dse.dir/EvaluationCache.cpp.o.d"
  "CMakeFiles/pico_dse.dir/Evaluators.cpp.o"
  "CMakeFiles/pico_dse.dir/Evaluators.cpp.o.d"
  "CMakeFiles/pico_dse.dir/Pareto.cpp.o"
  "CMakeFiles/pico_dse.dir/Pareto.cpp.o.d"
  "CMakeFiles/pico_dse.dir/Spacewalker.cpp.o"
  "CMakeFiles/pico_dse.dir/Spacewalker.cpp.o.d"
  "libpico_dse.a"
  "libpico_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
