# Empty dependencies file for pico_dse.
# This may be replaced when dependencies are built.
