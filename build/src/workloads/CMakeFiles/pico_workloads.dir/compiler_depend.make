# Empty compiler generated dependencies file for pico_workloads.
# This may be replaced when dependencies are built.
