file(REMOVE_RECURSE
  "CMakeFiles/pico_workloads.dir/AppSpec.cpp.o"
  "CMakeFiles/pico_workloads.dir/AppSpec.cpp.o.d"
  "CMakeFiles/pico_workloads.dir/Toolchain.cpp.o"
  "CMakeFiles/pico_workloads.dir/Toolchain.cpp.o.d"
  "libpico_workloads.a"
  "libpico_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
