file(REMOVE_RECURSE
  "libpico_workloads.a"
)
