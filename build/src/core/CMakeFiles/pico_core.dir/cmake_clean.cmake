file(REMOVE_RECURSE
  "CMakeFiles/pico_core.dir/AhhModel.cpp.o"
  "CMakeFiles/pico_core.dir/AhhModel.cpp.o.d"
  "CMakeFiles/pico_core.dir/DilationModel.cpp.o"
  "CMakeFiles/pico_core.dir/DilationModel.cpp.o.d"
  "CMakeFiles/pico_core.dir/TraceModel.cpp.o"
  "CMakeFiles/pico_core.dir/TraceModel.cpp.o.d"
  "libpico_core.a"
  "libpico_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
