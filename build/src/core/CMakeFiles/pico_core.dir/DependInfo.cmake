
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AhhModel.cpp" "src/core/CMakeFiles/pico_core.dir/AhhModel.cpp.o" "gcc" "src/core/CMakeFiles/pico_core.dir/AhhModel.cpp.o.d"
  "/root/repo/src/core/DilationModel.cpp" "src/core/CMakeFiles/pico_core.dir/DilationModel.cpp.o" "gcc" "src/core/CMakeFiles/pico_core.dir/DilationModel.cpp.o.d"
  "/root/repo/src/core/TraceModel.cpp" "src/core/CMakeFiles/pico_core.dir/TraceModel.cpp.o" "gcc" "src/core/CMakeFiles/pico_core.dir/TraceModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pico_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pico_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
