# Empty compiler generated dependencies file for pico_support.
# This may be replaced when dependencies are built.
