file(REMOVE_RECURSE
  "CMakeFiles/pico_support.dir/Logging.cpp.o"
  "CMakeFiles/pico_support.dir/Logging.cpp.o.d"
  "CMakeFiles/pico_support.dir/Table.cpp.o"
  "CMakeFiles/pico_support.dir/Table.cpp.o.d"
  "libpico_support.a"
  "libpico_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
