file(REMOVE_RECURSE
  "libpico_support.a"
)
