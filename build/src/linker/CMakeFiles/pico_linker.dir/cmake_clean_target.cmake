file(REMOVE_RECURSE
  "libpico_linker.a"
)
