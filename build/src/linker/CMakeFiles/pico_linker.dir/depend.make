# Empty dependencies file for pico_linker.
# This may be replaced when dependencies are built.
