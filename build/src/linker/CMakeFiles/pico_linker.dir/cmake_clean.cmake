file(REMOVE_RECURSE
  "CMakeFiles/pico_linker.dir/Linker.cpp.o"
  "CMakeFiles/pico_linker.dir/Linker.cpp.o.d"
  "libpico_linker.a"
  "libpico_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
