file(REMOVE_RECURSE
  "libpico_ir.a"
)
