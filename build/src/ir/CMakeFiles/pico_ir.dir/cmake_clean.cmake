file(REMOVE_RECURSE
  "CMakeFiles/pico_ir.dir/Program.cpp.o"
  "CMakeFiles/pico_ir.dir/Program.cpp.o.d"
  "libpico_ir.a"
  "libpico_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
