# Empty dependencies file for pico_ir.
# This may be replaced when dependencies are built.
