# Empty compiler generated dependencies file for pico_compiler.
# This may be replaced when dependencies are built.
