
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/Hyperblock.cpp" "src/compiler/CMakeFiles/pico_compiler.dir/Hyperblock.cpp.o" "gcc" "src/compiler/CMakeFiles/pico_compiler.dir/Hyperblock.cpp.o.d"
  "/root/repo/src/compiler/Scheduler.cpp" "src/compiler/CMakeFiles/pico_compiler.dir/Scheduler.cpp.o" "gcc" "src/compiler/CMakeFiles/pico_compiler.dir/Scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pico_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pico_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pico_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
