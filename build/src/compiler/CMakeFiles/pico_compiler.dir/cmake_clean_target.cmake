file(REMOVE_RECURSE
  "libpico_compiler.a"
)
