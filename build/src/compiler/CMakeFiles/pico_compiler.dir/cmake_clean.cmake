file(REMOVE_RECURSE
  "CMakeFiles/pico_compiler.dir/Hyperblock.cpp.o"
  "CMakeFiles/pico_compiler.dir/Hyperblock.cpp.o.d"
  "CMakeFiles/pico_compiler.dir/Scheduler.cpp.o"
  "CMakeFiles/pico_compiler.dir/Scheduler.cpp.o.d"
  "libpico_compiler.a"
  "libpico_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
