# Empty dependencies file for bench_predication.
# This may be replaced when dependencies are built.
