file(REMOVE_RECURSE
  "CMakeFiles/bench_predication.dir/bench_predication.cpp.o"
  "CMakeFiles/bench_predication.dir/bench_predication.cpp.o.d"
  "bench_predication"
  "bench_predication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
