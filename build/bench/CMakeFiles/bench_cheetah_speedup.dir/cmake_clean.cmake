file(REMOVE_RECURSE
  "CMakeFiles/bench_cheetah_speedup.dir/bench_cheetah_speedup.cpp.o"
  "CMakeFiles/bench_cheetah_speedup.dir/bench_cheetah_speedup.cpp.o.d"
  "bench_cheetah_speedup"
  "bench_cheetah_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cheetah_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
