# Empty compiler generated dependencies file for bench_cheetah_speedup.
# This may be replaced when dependencies are built.
