file(REMOVE_RECURSE
  "libpico_bench_common.a"
)
