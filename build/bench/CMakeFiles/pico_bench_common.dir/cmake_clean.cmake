file(REMOVE_RECURSE
  "CMakeFiles/pico_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/pico_bench_common.dir/BenchCommon.cpp.o.d"
  "libpico_bench_common.a"
  "libpico_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pico_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
