# Empty dependencies file for pico_bench_common.
# This may be replaced when dependencies are built.
