
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7.cpp" "bench/CMakeFiles/bench_fig7.dir/bench_fig7.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7.dir/bench_fig7.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pico_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/pico_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pico_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pico_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pico_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pico_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/pico_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pico_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/pico_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pico_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pico_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pico_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
