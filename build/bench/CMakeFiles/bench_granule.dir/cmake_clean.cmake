file(REMOVE_RECURSE
  "CMakeFiles/bench_granule.dir/bench_granule.cpp.o"
  "CMakeFiles/bench_granule.dir/bench_granule.cpp.o.d"
  "bench_granule"
  "bench_granule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_granule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
