# Empty dependencies file for bench_ablation_3c.
# This may be replaced when dependencies are built.
