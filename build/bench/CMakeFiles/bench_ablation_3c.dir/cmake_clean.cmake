file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_3c.dir/bench_ablation_3c.cpp.o"
  "CMakeFiles/bench_ablation_3c.dir/bench_ablation_3c.cpp.o.d"
  "bench_ablation_3c"
  "bench_ablation_3c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_3c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
