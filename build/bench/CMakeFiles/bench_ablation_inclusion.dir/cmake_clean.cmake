file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inclusion.dir/bench_ablation_inclusion.cpp.o"
  "CMakeFiles/bench_ablation_inclusion.dir/bench_ablation_inclusion.cpp.o.d"
  "bench_ablation_inclusion"
  "bench_ablation_inclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
