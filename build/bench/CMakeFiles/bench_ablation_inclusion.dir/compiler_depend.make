# Empty compiler generated dependencies file for bench_ablation_inclusion.
# This may be replaced when dependencies are built.
