file(REMOVE_RECURSE
  "CMakeFiles/bench_ahh_validation.dir/bench_ahh_validation.cpp.o"
  "CMakeFiles/bench_ahh_validation.dir/bench_ahh_validation.cpp.o.d"
  "bench_ahh_validation"
  "bench_ahh_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ahh_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
