# Empty dependencies file for bench_ahh_validation.
# This may be replaced when dependencies are built.
