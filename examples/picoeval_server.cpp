/**
 * @file
 * Exploration-as-a-service daemon: accepts concurrent evaluation
 * requests over a Unix domain socket, batches them onto a bounded
 * worker pool, and shares one persistent crash-safe evaluation cache
 * across every request.
 *
 * Usage: picoeval_server --socket PATH [--workers N] [--cache FILE]
 *            [--queue-capacity N] [--watermark N]
 *            [--default-deadline-ms N] [--drain-ms N] [--chaos]
 *            [--metrics-out FILE] [--trace-out FILE]
 *            [--flight-out FILE]
 *        picoeval_server --verify-cache FILE
 *
 *   --socket PATH      Unix socket to listen on (required to serve)
 *   --workers N        evaluation worker threads (default 2)
 *   --cache FILE       persistent evaluation-cache database
 *   --queue-capacity N admission queue hard bound (default 64)
 *   --watermark N      load-shedding threshold (default 48)
 *   --default-deadline-ms N  deadline applied to requests that
 *                      carry none (default 0 = none)
 *   --drain-ms N       graceful-drain deadline on SIGTERM/SIGINT
 *                      (default 10000)
 *   --chaos            arm deterministic fault-injection sites
 *                      (cache-write faults, slow evaluations,
 *                      worker exceptions) — for the chaos-tested
 *                      load harness, never production
 *   --metrics-out FILE write a machine-readable run report (JSON)
 *                      after the drain
 *   --trace-out FILE   enable request-scoped tracing and write the
 *                      Chrome trace (request ids, span parentage,
 *                      cross-thread flow events) after the drain
 *   --flight-out FILE  write the flight-recorder ring (last 1024
 *                      request lifecycle events) after the drain,
 *                      on SIGUSR1, and from the fatal()/panic() hook
 *   --verify-cache FILE  standalone mode: audit an evaluation-cache
 *                      database with the result verifier and exit
 *                      (0 = clean) — CI runs this after chaos loads
 *
 * On SIGTERM/SIGINT the server stops accepting, drains admitted work
 * under --drain-ms (answering anything the deadline strands as
 * shed), flushes the cache, writes the final report, and exits 0 on
 * a clean drain, 4 when the drain deadline was blown. SIGUSR1 dumps
 * the flight recorder to --flight-out without disturbing the server.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "server/EvalService.hpp"
#include "server/Server.hpp"
#include "support/Backoff.hpp"
#include "support/FaultInjection.hpp"
#include "support/FlightRecorder.hpp"
#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "support/RunReport.hpp"
#include "support/TraceEvents.hpp"
#include "verify/ResultVerifier.hpp"

using namespace pico;

namespace
{

volatile std::sig_atomic_t g_signal = 0;
volatile std::sig_atomic_t g_dump = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

void
onDumpSignal(int)
{
    g_dump = 1;
}

/** Where the fatal hook and SIGUSR1 write the flight recorder. */
std::string g_flight_path;

/**
 * Installed via setFatalHook: any panic()/fatal() on any thread
 * dumps the flight recorder before the exception unwinds, so the
 * post-mortem names the request ids in flight at the moment of
 * death.
 */
void
fatalFlightDump(const char *, const std::string &)
{
    if (!g_flight_path.empty())
        support::FlightRecorder::instance().dumpToFile(
            g_flight_path);
}

/** Match `--flag value` or `--flag=value`; fills `value` on match. */
bool
flagValue(int argc, char **argv, int &i, const std::string &flag,
          std::string &value)
{
    std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
        value = arg.substr(flag.size() + 1);
        return true;
    }
    return false;
}

uint64_t
toU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

/**
 * Deterministic chaos configuration: the same sites and triggers
 * every run, so a chaos load test is reproducible. Sites:
 * cache-write faults (the save protocol's recovery path), slow
 * evaluations (deadline/backpressure path), worker exceptions
 * (failure-isolation path).
 */
void
armChaos()
{
    auto &inj = support::FaultInjector::instance();
    inj.arm("EvaluationCache::save:before-write", 1, 2);
    inj.arm("EvaluationCache::save:before-rename", 4, 1);
    inj.arm("EvalService::execute", 3, 3);
    inj.arm("EvalService::execute:slow", 1, 0);
    inj.arm("Spacewalker::evaluateDesign", 10, 3);
    std::cout << "chaos mode: fault sites armed\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path, cache_path, metrics_out, verify_path;
    std::string trace_out, flight_out;
    server::ServiceOptions opts;
    uint64_t drain_ms = 10000;
    bool chaos = false;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--socket", socket_path) ||
            flagValue(argc, argv, i, "--cache", cache_path) ||
            flagValue(argc, argv, i, "--metrics-out", metrics_out) ||
            flagValue(argc, argv, i, "--trace-out", trace_out) ||
            flagValue(argc, argv, i, "--flight-out", flight_out) ||
            flagValue(argc, argv, i, "--verify-cache",
                      verify_path)) {
            // value captured by flagValue
        } else if (flagValue(argc, argv, i, "--workers", value)) {
            opts.workers = static_cast<unsigned>(toU64(value));
        } else if (flagValue(argc, argv, i, "--queue-capacity",
                             value)) {
            opts.queueCapacity = toU64(value);
        } else if (flagValue(argc, argv, i, "--watermark", value)) {
            opts.queueWatermark = toU64(value);
        } else if (flagValue(argc, argv, i, "--default-deadline-ms",
                             value)) {
            opts.defaultDeadlineMs = toU64(value);
        } else if (flagValue(argc, argv, i, "--drain-ms", value)) {
            drain_ms = toU64(value);
        } else if (std::string(argv[i]) == "--chaos") {
            chaos = true;
        } else {
            std::cerr << "unknown argument: " << argv[i] << "\n";
            return 2;
        }
    }

    // Standalone audit mode: is a cache database internally
    // consistent? CI runs this over the database a chaos load left
    // behind — surviving injected faults means nothing if the file
    // no longer loads clean.
    if (!verify_path.empty()) {
        verify::Diagnostics diags;
        verify::verifyCacheFile(verify_path, diags);
        std::cout << "cache " << verify_path << ": "
                  << diags.errorCount() << " error(s), "
                  << diags.warningCount() << " warning(s)\n";
        if (!diags.empty())
            std::cout << diags.report();
        return diags.clean() ? 0 : 1;
    }

    if (socket_path.empty()) {
        std::cerr << "usage: picoeval_server --socket PATH [...] | "
                     "--verify-cache FILE\n";
        return 2;
    }

    support::setMetricsEnabled(!metrics_out.empty());
    support::setTraceEnabled(!trace_out.empty());
    if (!flight_out.empty()) {
        g_flight_path = flight_out;
        setFatalHook(fatalFlightDump);
    }
    if (chaos)
        armChaos();
    opts.cachePath = cache_path;
    opts.drainDeadlineMs = drain_ms;

    server::EvalService service(opts);
    server::Server srv(socket_path, &service);

    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    struct sigaction dump_sa = {};
    dump_sa.sa_handler = onDumpSignal;
    sigaction(SIGUSR1, &dump_sa, nullptr);

    std::thread accept_thread([&srv] { srv.run(); });
    while (g_signal == 0) {
        if (g_dump != 0) {
            g_dump = 0;
            // Live post-mortem: dump the ring without disturbing
            // the serving threads (snapshot never blocks writers).
            if (!flight_out.empty() &&
                support::FlightRecorder::instance().dumpToFile(
                    flight_out))
                std::cout << "flight recorder dumped to "
                          << flight_out << "\n";
        }
        support::sleepForMs(50);
    }
    std::cout << "signal " << static_cast<int>(g_signal)
              << ": stopping\n";

    // Graceful shutdown sequence: stop the transport first (no new
    // requests can arrive), then drain the admitted ones.
    srv.stop();
    accept_thread.join();
    bool graceful = service.drain(drain_ms);

    // Snapshot the counters only now: the drain above may still
    // complete (or shed) queued requests, and the report must
    // account for every one of them.
    auto stats = service.statsValues();
    std::cout << "served: " << stats["completed"] << " ok, "
              << stats["shed"] << " shed, " << stats["deadline"]
              << " deadline, " << stats["failed"] << " failed ("
              << srv.connections() << " connection(s))\n";

    if (!metrics_out.empty()) {
        support::RunReport report;
        report.set("server.socket", socket_path);
        report.set("server.workers",
                   static_cast<uint64_t>(opts.workers));
        report.set("server.chaos",
                   static_cast<uint64_t>(chaos ? 1 : 0));
        report.set("server.drain.graceful",
                   static_cast<uint64_t>(graceful ? 1 : 0));
        for (const auto &[k, v] : stats)
            report.set("server." + k, v);
        if (report.write(metrics_out))
            std::cout << "run report written to " << metrics_out
                      << "\n";
    }
    if (!trace_out.empty() &&
        support::TraceRecorder::instance().writeJson(trace_out))
        std::cout << "chrome trace written to " << trace_out << "\n";
    if (!flight_out.empty() &&
        support::FlightRecorder::instance().dumpToFile(flight_out))
        std::cout << "flight recorder dumped to " << flight_out
                  << "\n";
    return graceful ? 0 : 4;
}
