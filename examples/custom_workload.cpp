/**
 * @file
 * Custom workload: define your own embedded application with the
 * AppSpec knobs (here, a DSP-style streaming kernel), pick a
 * hierarchy, and evaluate end-to-end execution time = processor
 * cycles + stall cycles, on two candidate machines.
 */

#include <iostream>

#include "cache/Hierarchy.hpp"
#include "support/Table.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

using namespace pico;

int
main()
{
    // A loop-heavy, float-heavy streaming kernel over large arrays:
    // the shape of an audio/video filter.
    workloads::AppSpec spec;
    spec.name = "fir-pipeline";
    spec.seed = 2026;
    spec.numFunctions = 12;
    spec.minBlocksPerFunction = 4;
    spec.maxBlocksPerFunction = 12;
    spec.minOpsPerBlock = 8;
    spec.maxOpsPerBlock = 24;
    spec.loopProb = 0.55;
    spec.loopTripMean = 24.0;
    spec.branchProb = 0.2;
    spec.callProb = 0.1;
    spec.fracMem = 0.35;
    spec.fracFloat = 0.3;
    spec.depDensity = 0.2; // plenty of ILP
    spec.numStreams = 6;
    spec.minStreamWords = 65536;
    spec.maxStreamWords = 262144;
    spec.patterns = {0.55, 0.35, 0.0, 0.05, 0.05};

    auto prog = workloads::buildAndProfile(spec);

    cache::HierarchyConfig hierarchy;
    hierarchy.icache = cache::CacheConfig::fromSize(4096, 2, 32);
    hierarchy.dcache = cache::CacheConfig::fromSize(8192, 2, 32);
    hierarchy.ucache = cache::CacheConfig::fromSize(65536, 4, 64);
    hierarchy.l2HitLatency = 8;
    hierarchy.memoryLatency = 60;

    TextTable table("fir-pipeline on two machines, " +
                    hierarchy.icache.name() + " I$ / " +
                    hierarchy.dcache.name() + " D$ / " +
                    hierarchy.ucache.name() + " U$");
    table.setHeader({"machine", "proc cycles", "I$ misses",
                     "D$ misses", "U$ misses", "stall cycles",
                     "total", "speedup"});

    double base_total = 0.0;
    for (const char *name : {"1111", "4332"}) {
        auto build = workloads::buildFor(
            prog, machine::MachineDesc::fromName(name));
        cache::HierarchySim sim(hierarchy);
        trace::TraceGenerator gen(prog, build.sched, build.bin);
        gen.generate(trace::TraceKind::Unified,
                     [&sim](const trace::Access &a) {
                         sim.access(a);
                     },
                     60000);
        auto stats = sim.stats();
        uint64_t stalls = stats.stallCycles(hierarchy);
        double total =
            static_cast<double>(build.processorCycles + stalls);
        if (base_total == 0.0)
            base_total = total;
        table.addRow({name, std::to_string(build.processorCycles),
                      std::to_string(stats.iMisses),
                      std::to_string(stats.dMisses),
                      std::to_string(stats.uMisses),
                      std::to_string(stalls),
                      TextTable::num(total, 0),
                      TextTable::num(base_total / total, 2)});
    }
    table.print(std::cout);

    std::cout << "\nNote how the wider machine trades processor "
                 "cycles for extra instruction-cache stalls — the "
                 "coupling the dilation model quantifies without "
                 "simulating every machine.\n";
    return 0;
}
