/**
 * @file
 * Design-space walk: run the spacewalker on an application and print
 * the cost-performance-optimal (Pareto) systems, the way an
 * automated embedded-system design flow would.
 *
 * Usage: design_space_walk [app]
 *   app  one of the suite names (default rasta)
 */

#include <iostream>

#include "dse/Spacewalker.hpp"
#include "support/Table.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    std::string app_name = argc > 1 ? argv[1] : "rasta";
    auto prog = workloads::buildAndProfile(
        workloads::specByName(app_name));

    // Processor space: every FU mix from narrow to wide.
    std::vector<std::string> machines = {"1111", "2111", "2211",
                                         "3221", "4221", "4332",
                                         "6332"};

    // Memory space: the default L1/L2 spaces (~20+ candidates per
    // cache type, as in the paper's sizing).
    dse::MemorySpaces spaces;
    dse::Spacewalker::Options opts;
    opts.traceBlocks = 40000;
    dse::Spacewalker walker(spaces, machines, opts);

    std::cout << "exploring " << machines.size() << " processors x "
              << spaces.icache.enumerate().size() << " I-caches x "
              << spaces.dcache.enumerate().size() << " D-caches x "
              << spaces.ucache.enumerate().size()
              << " U-caches for '" << app_name << "'...\n\n";

    auto result = walker.explore(prog);

    TextTable dil("Per-machine dilation and cycles");
    dil.setHeader({"machine", "dilation", "cycles"});
    for (const auto &[name, d] : result.dilations)
        dil.addRow({name, TextTable::num(d, 2),
                    std::to_string(result.processorCycles.at(name))});
    dil.print(std::cout);
    std::cout << "\n";

    TextTable sys("Cost-performance-optimal systems");
    sys.setHeader({"#", "system", "cost", "total cycles"});
    auto sorted = result.systems.sorted();
    for (size_t i = 0; i < sorted.size(); ++i) {
        sys.addRow({std::to_string(i + 1), sorted[i].id,
                    TextTable::num(sorted[i].cost, 1),
                    TextTable::num(sorted[i].time, 0)});
    }
    sys.print(std::cout);

    std::cout << "\n"
              << result.systems.offered() << " designs evaluated, "
              << sorted.size()
              << " cost-performance optimal. Every cache metric came "
                 "from reference-trace simulation plus the dilation "
                 "model.\n";

    // A failing design is skipped and logged, not fatal: report
    // whether this walk was complete.
    if (!result.complete()) {
        std::cout << "\nWARNING: exploration was partial — "
                  << result.failures.report();
        return 1;
    }
    return 0;
}
