/**
 * @file
 * Design-space walk: run the spacewalker on an application and print
 * the cost-performance-optimal (Pareto) systems, the way an
 * automated embedded-system design flow would.
 *
 * Usage: design_space_walk [app] [--jobs N] [--verify[=0|1]]
 *                          [--metrics-out FILE] [--trace-out FILE]
 *                          [--cache FILE] [--timeout-ms N]
 *                          [--replacement lru,fifo,rand]
 *                          [--write wb,wt] [--write-cost N]
 *   app      one of the suite names (default rasta); includes the
 *            accelerator suite (matmul-tile8, matmul-tile16,
 *            zipf-lut, zipf-dispatch)
 *   --jobs N worker threads for the walk (default 1 = serial,
 *            0 = one per hardware thread); results are identical
 *            for every N
 *   --timeout-ms N  wall-clock budget for the walk; on expiry the
 *            walk cancels cooperatively at the next checkpoint and
 *            reports the designs it completed (partial results,
 *            exit code 3). Pair with --cache so a rerun resumes
 *            from the completed work instead of redoing it.
 *   --verify run the static verification passes (src/verify) at the
 *            walk's phase boundaries and print the findings;
 *            --verify=0 forces them off even in Debug builds. The
 *            walk's results are bit-identical either way.
 *   --metrics-out FILE  enable the metrics registry and write a
 *            machine-readable run report (JSON) after the walk
 *   --trace-out FILE    record spans and write a Chrome trace-event
 *            file (load in chrome://tracing or ui.perfetto.dev)
 *   --cache FILE        persistent evaluation-cache database; rerun
 *            with the same file to see disk hits in the report
 *   --replacement LIST  comma-separated replacement-policy axis for
 *            the data and unified cache spaces (lru, fifo, rand;
 *            default lru). The instruction cache keeps LRU: its
 *            references carry no stores and the paper's I-side
 *            dilation model is calibrated on stack simulation.
 *   --write LIST        comma-separated write-policy axis for the
 *            data and unified cache spaces (wb, wt; default wb)
 *   --write-cost N      stall cycles per memory write (dirty-line
 *            writeback or store write-through; default 0 = classic
 *            read-only stall model)
 * Flags accept both `--flag value` and `--flag=value`.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cache/Policy.hpp"
#include "dse/Spacewalker.hpp"
#include "support/CancelToken.hpp"
#include "support/Metrics.hpp"
#include "support/RunReport.hpp"
#include "support/Table.hpp"
#include "support/TraceEvents.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

using namespace pico;

namespace
{

/** Match `--flag value` or `--flag=value`; fills `value` on match. */
bool
flagValue(int argc, char **argv, int &i, const std::string &flag,
          std::string &value)
{
    std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
        value = arg.substr(flag.size() + 1);
        return true;
    }
    return false;
}

/** Split a comma-separated list into its non-empty items. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> items;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > pos)
            items.push_back(text.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return items;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = "rasta";
    unsigned jobs = 1;
    int verify = -1;
    uint64_t timeout_ms = 0;
    double write_cost = 0.0;
    std::vector<cache::ReplacementPolicy> replacements;
    std::vector<cache::WritePolicy> write_policies;
    std::string metrics_out, trace_out, cache_path, value;
    for (int i = 1; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--jobs", value)) {
            jobs = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 10));
        } else if (flagValue(argc, argv, i, "--timeout-ms", value)) {
            timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--replacement",
                             value)) {
            for (const auto &item : splitList(value))
                replacements.push_back(cache::parseReplacement(item));
        } else if (flagValue(argc, argv, i, "--write", value)) {
            for (const auto &item : splitList(value))
                write_policies.push_back(
                    cache::parseWritePolicy(item));
        } else if (flagValue(argc, argv, i, "--write-cost", value)) {
            write_cost = std::strtod(value.c_str(), nullptr);
        } else if (std::string(argv[i]) == "--verify") {
            verify = 1;
        } else if (std::string(argv[i]).rfind("--verify=", 0) == 0) {
            // `=value` form only: a bare `--verify` must not eat
            // the app-name argument.
            verify = std::string(argv[i]).substr(9) == "0" ? 0 : 1;
        } else if (flagValue(argc, argv, i, "--metrics-out",
                             metrics_out) ||
                   flagValue(argc, argv, i, "--trace-out",
                             trace_out) ||
                   flagValue(argc, argv, i, "--cache", cache_path)) {
            // value captured by flagValue
        } else {
            app_name = argv[i];
        }
    }
    // Instrumentation is opt-in: without the flags the walk runs
    // with the registry disabled (a relaxed load per call site).
    if (!metrics_out.empty())
        support::setMetricsEnabled(true);
    if (!trace_out.empty())
        support::setTraceEnabled(true);
    auto prog = workloads::buildAndProfile(
        workloads::specByName(app_name));

    // Processor space: every FU mix from narrow to wide.
    std::vector<std::string> machines = {"1111", "2111", "2211",
                                         "3221", "4221", "4332",
                                         "6332"};

    // Memory space: the default L1/L2 spaces (~20+ candidates per
    // cache type, as in the paper's sizing).
    dse::MemorySpaces spaces;
    // Policy axes apply to the data-side spaces (see the usage
    // comment for why the I$ stays LRU/write-back).
    if (!replacements.empty()) {
        spaces.dcache.replacements = replacements;
        spaces.ucache.replacements = replacements;
    }
    if (!write_policies.empty()) {
        spaces.dcache.writePolicies = write_policies;
        spaces.ucache.writePolicies = write_policies;
    }
    dse::Spacewalker::Options opts;
    opts.traceBlocks = 40000;
    opts.stalls.writeCost = write_cost;
    opts.jobs = jobs;
    opts.verify = verify;
    opts.evaluationCachePath = cache_path;
    // The token outlives the walk; the walker only borrows it.
    support::CancelToken deadline =
        timeout_ms != 0 ? support::CancelToken::afterMs(timeout_ms)
                        : support::CancelToken();
    if (timeout_ms != 0)
        opts.cancel = &deadline;
    dse::Spacewalker walker(spaces, machines, opts);

    std::cout << "exploring " << machines.size() << " processors x "
              << spaces.icache.enumerate().size() << " I-caches x "
              << spaces.dcache.enumerate().size() << " D-caches x "
              << spaces.ucache.enumerate().size()
              << " U-caches for '" << app_name << "' with "
              << support::ThreadPool::resolveJobs(jobs)
              << " job(s)...\n\n";

    auto result = walker.explore(prog);

    TextTable dil("Per-machine dilation and cycles");
    dil.setHeader({"machine", "dilation", "cycles"});
    for (const auto &[name, d] : result.dilations)
        dil.addRow({name, TextTable::num(d, 2),
                    std::to_string(result.processorCycles.at(name))});
    dil.print(std::cout);
    std::cout << "\n";

    TextTable sys("Cost-performance-optimal systems");
    sys.setHeader({"#", "system", "cost", "total cycles"});
    auto sorted = result.systems.sorted();
    for (size_t i = 0; i < sorted.size(); ++i) {
        sys.addRow({std::to_string(i + 1), sorted[i].id,
                    TextTable::num(sorted[i].cost, 1),
                    TextTable::num(sorted[i].time, 0)});
    }
    sys.print(std::cout);

    std::cout << "\n"
              << result.systems.offered() << " designs evaluated, "
              << sorted.size()
              << " cost-performance optimal. Every cache metric came "
                 "from reference-trace simulation plus the dilation "
                 "model.\n";

    if (!cache_path.empty()) {
        auto stats = walker.evaluationCache().stats();
        std::cout << "\nevaluation cache '" << cache_path << "': "
                  << stats.hits << " hit(s) (" << stats.diskHits
                  << " from a previous run), " << stats.computed
                  << " computed this run, " << stats.saves
                  << " checkpoint(s)\n";
    }

    if (!metrics_out.empty()) {
        support::RunReport report;
        report.set("app", app_name);
        report.set("jobs", static_cast<uint64_t>(jobs));
        report.set("jobs.resolved",
                   static_cast<uint64_t>(
                       support::ThreadPool::resolveJobs(jobs)));
        report.set("machines",
                   static_cast<uint64_t>(machines.size()));
        report.set("trace.blocks", opts.traceBlocks);
        report.set("designs.evaluated", result.evaluatedDesigns);
        report.set("designs.failed",
                   static_cast<uint64_t>(result.failures.size()));
        report.set("timeout.ms", timeout_ms);
        report.set("deadline_exceeded",
                   static_cast<uint64_t>(
                       result.deadlineExceeded ? 1 : 0));
        report.set("pareto.systems",
                   static_cast<uint64_t>(sorted.size()));
        report.set("verify.errors",
                   static_cast<uint64_t>(
                       result.diagnostics.errorCount()));
        report.set("verify.warnings",
                   static_cast<uint64_t>(
                       result.diagnostics.warningCount()));
        if (report.write(metrics_out))
            std::cout << "run report written to " << metrics_out
                      << "\n";
    }
    if (!trace_out.empty() &&
        support::TraceRecorder::instance().writeJson(trace_out)) {
        std::cout << "trace written to " << trace_out
                  << " (load in chrome://tracing)\n";
    }

    if (verify == 1) {
        std::cout << "\nverification: "
                  << result.diagnostics.errorCount() << " error(s), "
                  << result.diagnostics.warningCount()
                  << " warning(s)\n";
        if (!result.diagnostics.empty())
            std::cout << result.diagnostics.report();
    }

    // A blown --timeout-ms is its own outcome, distinct from both a
    // clean walk (0) and a design failure (1): the results above are
    // genuine but partial, and everything completed is in the cache.
    if (result.deadlineExceeded) {
        std::cout << "\nWARNING: walk timed out after " << timeout_ms
                  << " ms with " << result.evaluatedDesigns
                  << " design(s) evaluated — partial results above"
                  << (cache_path.empty()
                          ? ""
                          : "; rerun with the same --cache to resume")
                  << "\n";
        return 3;
    }

    // A failing design is skipped and logged, not fatal: report
    // whether this walk was complete.
    if (!result.complete()) {
        std::cout << "\nWARNING: exploration was partial — "
                  << result.failures.report();
        return 1;
    }
    return result.diagnostics.clean() ? 0 : 1;
}
