/**
 * @file
 * Design-space walk: run the spacewalker on an application and print
 * the cost-performance-optimal (Pareto) systems, the way an
 * automated embedded-system design flow would.
 *
 * Usage: design_space_walk [app] [--jobs N]
 *   app      one of the suite names (default rasta)
 *   --jobs N worker threads for the walk (default 1 = serial,
 *            0 = one per hardware thread); results are identical
 *            for every N
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "dse/Spacewalker.hpp"
#include "support/Table.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

using namespace pico;

int
main(int argc, char **argv)
{
    std::string app_name = "rasta";
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            app_name = arg;
        }
    }
    auto prog = workloads::buildAndProfile(
        workloads::specByName(app_name));

    // Processor space: every FU mix from narrow to wide.
    std::vector<std::string> machines = {"1111", "2111", "2211",
                                         "3221", "4221", "4332",
                                         "6332"};

    // Memory space: the default L1/L2 spaces (~20+ candidates per
    // cache type, as in the paper's sizing).
    dse::MemorySpaces spaces;
    dse::Spacewalker::Options opts;
    opts.traceBlocks = 40000;
    opts.jobs = jobs;
    dse::Spacewalker walker(spaces, machines, opts);

    std::cout << "exploring " << machines.size() << " processors x "
              << spaces.icache.enumerate().size() << " I-caches x "
              << spaces.dcache.enumerate().size() << " D-caches x "
              << spaces.ucache.enumerate().size()
              << " U-caches for '" << app_name << "' with "
              << support::ThreadPool::resolveJobs(jobs)
              << " job(s)...\n\n";

    auto result = walker.explore(prog);

    TextTable dil("Per-machine dilation and cycles");
    dil.setHeader({"machine", "dilation", "cycles"});
    for (const auto &[name, d] : result.dilations)
        dil.addRow({name, TextTable::num(d, 2),
                    std::to_string(result.processorCycles.at(name))});
    dil.print(std::cout);
    std::cout << "\n";

    TextTable sys("Cost-performance-optimal systems");
    sys.setHeader({"#", "system", "cost", "total cycles"});
    auto sorted = result.systems.sorted();
    for (size_t i = 0; i < sorted.size(); ++i) {
        sys.addRow({std::to_string(i + 1), sorted[i].id,
                    TextTable::num(sorted[i].cost, 1),
                    TextTable::num(sorted[i].time, 0)});
    }
    sys.print(std::cout);

    std::cout << "\n"
              << result.systems.offered() << " designs evaluated, "
              << sorted.size()
              << " cost-performance optimal. Every cache metric came "
                 "from reference-trace simulation plus the dilation "
                 "model.\n";

    // A failing design is skipped and logged, not fatal: report
    // whether this walk was complete.
    if (!result.complete()) {
        std::cout << "\nWARNING: exploration was partial — "
                  << result.failures.report();
        return 1;
    }
    return 0;
}
