/**
 * @file
 * Operator CLI for a running picoeval_server: send one introspection
 * verb and print the response.
 *
 * Usage: picoeval_ctl --socket PATH VERB [--request-id N]
 *
 *   VERB             ping | stats | health | dump-trace
 *   --request-id N   the request id to drain (dump-trace only; eval
 *                    responses return theirs in v.request.id)
 *
 * stats/health/ping print the response's `key value` pairs, one per
 * line, sorted — greppable and diffable. A response body (the
 * dump-trace span tree, health's last-fault record) is printed raw
 * on stdout so it can be piped straight into a JSON validator:
 *
 *     picoeval_ctl --socket /tmp/s.sock dump-trace --request-id 7 \
 *         | python3 -m json.tool
 *
 * Exit codes: 0 = verb answered ok; 1 = non-ok response; 2 = usage.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "server/Client.hpp"

using namespace pico;

namespace
{

/** Match `--flag value` or `--flag=value`; fills `value` on match. */
bool
flagValue(int argc, char **argv, int &i, const std::string &flag,
          std::string &value)
{
    std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
        value = arg.substr(flag.size() + 1);
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path, verb, value;
    uint64_t request_id = 0;
    for (int i = 1; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--socket", socket_path)) {
        } else if (flagValue(argc, argv, i, "--request-id", value)) {
            request_id = std::strtoull(value.c_str(), nullptr, 10);
        } else if (argv[i][0] != '-' && verb.empty()) {
            verb = argv[i];
        } else {
            std::cerr << "unknown argument: " << argv[i] << "\n";
            return 2;
        }
    }
    if (socket_path.empty() || verb.empty()) {
        std::cerr << "usage: picoeval_ctl --socket PATH "
                     "ping|stats|health|dump-trace "
                     "[--request-id N]\n";
        return 2;
    }

    server::ClientOptions copts;
    copts.socketPath = socket_path;
    // One shot: an operator probing a wedged server wants the error,
    // not a retry loop.
    copts.maxAttempts = 1;
    server::Client client(copts);

    server::Request req;
    req.type = verb;
    req.requestId = request_id;
    server::Response resp = client.call(req);
    if (resp.status != server::Status::Ok) {
        std::cerr << "error: " << server::statusName(resp.status)
                  << (resp.error.empty() ? "" : ": " + resp.error)
                  << "\n";
        return 1;
    }
    if (verb == "dump-trace") {
        // Body only: pipeable straight into a JSON validator.
        std::cout << resp.body << "\n";
    } else {
        for (const auto &[k, v] : resp.values)
            std::cout << k << " " << v << "\n";
        if (!resp.body.empty())
            std::cout << "body " << resp.body << "\n";
    }
    return 0;
}
