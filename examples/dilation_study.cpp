/**
 * @file
 * Dilation study: for one application and one target machine, show
 * the three ways of obtaining target-machine cache misses —
 * simulating the target's own trace ("actual"), simulating the
 * reference trace dilated by the text dilation ("dilated"), and the
 * paper's dilation model ("estimated", no extra simulation at all).
 *
 * Usage: dilation_study [app] [machine]
 *   app      one of the suite names (default 085.gcc)
 *   machine  a "6332"-style FU mix (default 3221)
 */

#include <iostream>

#include "cache/CacheSim.hpp"
#include "core/DilationModel.hpp"
#include "core/TraceModel.hpp"
#include "linker/LinkedBinary.hpp"
#include "support/Table.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

using namespace pico;

namespace
{

constexpr uint64_t kBlocks = 40000;

uint64_t
simulate(const ir::Program &prog,
         const workloads::MachineBuild &build, trace::TraceKind kind,
         const cache::CacheConfig &cfg, double dilation = 1.0)
{
    cache::CacheSim sim(cfg);
    trace::TraceGenerator gen(prog, build.sched, build.bin);
    gen.generateDilated(kind, dilation,
                        [&sim](const trace::Access &a) {
                            sim.access(a.addr, a.isWrite);
                        },
                        kBlocks);
    return sim.misses();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = argc > 1 ? argv[1] : "085.gcc";
    std::string machine_name = argc > 2 ? argv[2] : "3221";

    auto prog = workloads::buildAndProfile(
        workloads::specByName(app_name));
    auto ref = workloads::buildFor(
        prog, machine::MachineDesc::fromName("1111"));
    auto target = workloads::buildFor(
        prog, machine::MachineDesc::fromName(machine_name));
    double d = linker::textDilation(target.bin, ref.bin);

    std::cout << app_name << " on " << machine_name
              << ": text dilation " << TextTable::num(d, 3) << " ("
              << target.bin.textSize() << " / " << ref.bin.textSize()
              << " bytes)\n\n";

    // Fit the AHH parameters from the reference traces.
    trace::TraceGenerator ref_gen(prog, ref.sched, ref.bin);
    core::ItraceModeler imod;
    ref_gen.generate(trace::TraceKind::Instruction,
                     [&imod](const trace::Access &a) {
                         imod.access(a);
                     },
                     kBlocks);
    core::UtraceModeler umod(100000);
    ref_gen.generate(trace::TraceKind::Unified,
                     [&umod](const trace::Access &a) {
                         umod.access(a);
                     },
                     kBlocks);
    core::DilationModel model(imod.params(), umod.instrParams(),
                              umod.dataParams());

    core::MissOracle oracle = [&](const cache::CacheConfig &cfg) {
        return static_cast<double>(simulate(
            prog, ref, trace::TraceKind::Instruction, cfg));
    };

    TextTable table("actual vs dilated vs estimated misses");
    table.setHeader(
        {"cache", "actual", "dilated", "estimated", "est/act"});
    struct Row
    {
        const char *label;
        cache::CacheConfig cfg;
        trace::TraceKind kind;
    };
    Row rows[] = {
        {"I$ 1KB/1way/32B", cache::CacheConfig::fromSize(1024, 1, 32),
         trace::TraceKind::Instruction},
        {"I$ 16KB/2way/32B",
         cache::CacheConfig::fromSize(16384, 2, 32),
         trace::TraceKind::Instruction},
        {"U$ 16KB/2way/64B",
         cache::CacheConfig::fromSize(16384, 2, 64),
         trace::TraceKind::Unified},
        {"U$ 128KB/4way/64B",
         cache::CacheConfig::fromSize(131072, 4, 64),
         trace::TraceKind::Unified},
    };
    for (const auto &row : rows) {
        auto actual = static_cast<double>(
            simulate(prog, target, row.kind, row.cfg));
        auto dilated = static_cast<double>(
            simulate(prog, ref, row.kind, row.cfg, d));
        double est;
        if (row.kind == trace::TraceKind::Instruction) {
            est = model.estimateIcacheMisses(row.cfg, d, oracle);
        } else {
            auto ref_misses = static_cast<double>(
                simulate(prog, ref, row.kind, row.cfg));
            est = model.estimateUcacheMisses(row.cfg, d, ref_misses);
        }
        table.addRow({row.label, TextTable::num(actual, 0),
                      TextTable::num(dilated, 0),
                      TextTable::num(est, 0),
                      TextTable::num(actual > 0 ? est / actual : 0.0,
                                     2)});
    }
    table.print(std::cout);

    std::cout << "\nThe estimate used only reference-trace "
                 "simulations; no trace was ever generated for "
              << machine_name << ".\n";
    return 0;
}
