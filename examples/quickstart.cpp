/**
 * @file
 * Quickstart: the whole pipeline in one page.
 *
 *   1. Generate a synthetic application (stand-in for a MediaBench
 *      program) and profile it.
 *   2. Compile, assemble and link it for a VLIW machine.
 *   3. Generate an address trace and simulate a cache on it.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "cache/CacheSim.hpp"
#include "machine/MachineDesc.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

int
main()
{
    using namespace pico;

    // 1. A synthetic application: the "epic" analogue from the
    //    benchmark suite. buildAndProfile generates the IR and runs
    //    the profiling pass that fills block/call counts.
    auto spec = workloads::specByName("epic");
    ir::Program program = workloads::buildAndProfile(spec);
    std::cout << "program '" << program.name << "': "
              << program.functions.size() << " functions, "
              << program.totalBlocks() << " blocks, "
              << program.totalOperations() << " operations\n";

    // 2. Compile for a 4-issue reference machine ("1111" = one
    //    integer, float, memory and branch unit).
    auto mdes = machine::MachineDesc::fromName("1111");
    workloads::MachineBuild build = workloads::buildFor(program, mdes);
    std::cout << "machine " << mdes.name() << ": text size "
              << build.bin.textSize() << " bytes, estimated "
              << build.processorCycles << " processor cycles\n";

    // 3. Trace-driven simulation of a 16KB 2-way instruction cache.
    auto config = cache::CacheConfig::fromSize(16384, 2, 32);
    cache::CacheSim cache(config);
    trace::TraceGenerator gen(program, build.sched, build.bin);
    uint64_t refs = gen.generate(
        trace::TraceKind::Instruction,
        [&cache](const trace::Access &a) { cache.access(a.addr); },
        /*maxBlocks=*/50000);

    std::cout << "I-cache " << config.name() << ": " << refs
              << " fetches, " << cache.misses() << " misses ("
              << cache.missRate() * 100.0 << "%)\n";
    return 0;
}
