/**
 * @file
 * Load generator for picoeval_server: Zipf-distributed request
 * popularity, closed- or think-time-loop clients, full-jitter retry,
 * and a machine-readable latency/throughput/shedding report
 * (BENCH_server_load.json) that CI gates on.
 *
 * Usage: picoeval_loadgen --socket PATH [--clients N] [--requests N]
 *            [--apps a,b,...] [--machines m1,m2,...] [--zipf S]
 *            [--deadline-ms N] [--trace-blocks N] [--think-ms N]
 *            [--max-attempts N] [--seed N] [--stats-interval MS]
 *            [--json-out FILE]
 *
 *   --clients N      concurrent client threads (default 4)
 *   --requests N     requests per client (default 25)
 *   --apps LIST      app pool (default rasta,epic)
 *   --machines LIST  machine pool; each request draws one machine
 *                    (default 1111,2111,2211,3221)
 *   --zipf S         popularity skew of the request pool (default
 *                    1.8); hot requests repeat, exercising the memo
 *                    and the cache's single-flight path
 *   --deadline-ms N  per-request deadline (default 0 = none)
 *   --trace-blocks N per-request walk budget (default 2000)
 *   --think-ms N     think time between a client's requests
 *                    (default 0 = closed loop)
 *   --max-attempts N retry budget per request (default 8)
 *   --seed N         experiment seed; retry jitter and request
 *                    draws are reproducible from it (default 1)
 *   --stats-interval MS  sample the server's stats and health verbs
 *                    every MS ms *while the load runs*, verifying
 *                    the counters only ever grow; sample counts land
 *                    in the report (default 0 = off)
 *
 * Retries are counted separately from fresh requests (split by
 * cause: shed vs transport), so the reported throughput and request
 * totals are not inflated by the retry path. The final report
 * reconciles the server's counters against the client-side tally:
 * every attempt that reached the server must be accounted for as
 * exactly one of memo-hit/shed/completed/deadline/failed.
 *
 * Exit codes: 0 = every request reached a terminal answer; 1 =
 * protocol violation (bad_request/undecodable), lost requests,
 * non-monotonic mid-run stats, or a reconciliation failure.
 */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/BenchCommon.hpp"
#include "server/Client.hpp"
#include "support/Backoff.hpp"
#include "support/Metrics.hpp"
#include "support/Random.hpp"

using namespace pico;

namespace
{

/** Match `--flag value` or `--flag=value`; fills `value` on match. */
bool
flagValue(int argc, char **argv, int &i, const std::string &flag,
          std::string &value)
{
    std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
        value = arg.substr(flag.size() + 1);
        return true;
    }
    return false;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Per-client tally, merged after the join. */
struct ClientTally
{
    std::vector<double> okLatencyMs;
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t deadline = 0;
    uint64_t failed = 0;
    uint64_t badRequest = 0;
    uint64_t retries = 0;
    uint64_t retriesShed = 0;
    uint64_t retriesTransport = 0;
    uint64_t transportFailures = 0;
    uint64_t shedResponses = 0;
};

/** Mid-run stats/health sampler outcome. */
struct SamplerTally
{
    uint64_t samples = 0;
    uint64_t failures = 0;
    /** Counters observed moving backwards (must stay 0). */
    uint64_t violations = 0;
};

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    auto idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out = bench::extractJsonOutArg(argc, argv);
    std::string socket_path, value;
    uint64_t clients = 4, requests = 25, deadline_ms = 0;
    uint64_t trace_blocks = 2000, think_ms = 0, seed = 1;
    uint64_t max_attempts = 8, stats_interval_ms = 0;
    double zipf_s = 1.8;
    std::vector<std::string> apps = {"rasta", "epic"};
    std::vector<std::string> machines = {"1111", "2111", "2211",
                                         "3221"};
    for (int i = 1; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--socket", socket_path)) {
        } else if (flagValue(argc, argv, i, "--clients", value)) {
            clients = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--requests", value)) {
            requests = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--apps", value)) {
            apps = splitList(value);
        } else if (flagValue(argc, argv, i, "--machines", value)) {
            machines = splitList(value);
        } else if (flagValue(argc, argv, i, "--zipf", value)) {
            zipf_s = std::strtod(value.c_str(), nullptr);
        } else if (flagValue(argc, argv, i, "--deadline-ms", value)) {
            deadline_ms = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--trace-blocks",
                             value)) {
            trace_blocks = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--think-ms", value)) {
            think_ms = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--max-attempts",
                             value)) {
            max_attempts = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--seed", value)) {
            seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (flagValue(argc, argv, i, "--stats-interval",
                             value)) {
            stats_interval_ms =
                std::strtoull(value.c_str(), nullptr, 10);
        } else {
            std::cerr << "unknown argument: " << argv[i] << "\n";
            return 2;
        }
    }
    if (socket_path.empty() || apps.empty() || machines.empty() ||
        clients == 0 || requests == 0) {
        std::cerr << "usage: picoeval_loadgen --socket PATH [...]\n";
        return 2;
    }

    // The request pool: app x machine combinations, drawn with Zipf
    // popularity so a few requests are hot (hitting the server's
    // memo and the cache's single-flight path) while the tail keeps
    // generating fresh work.
    struct PoolEntry
    {
        std::string app;
        std::string machine;
    };
    std::vector<PoolEntry> pool;
    for (const auto &app : apps)
        for (const auto &m : machines)
            pool.push_back({app, m});

    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    uint64_t run_start = support::monotonicNowNs();

    // Mid-run observability sampler: hammer the stats and health
    // verbs *while* the eval load runs, and verify every monotonic
    // counter only ever grows between samples. An overloaded server
    // that cannot answer its introspection verbs fails here.
    std::atomic<bool> sampler_stop{false};
    SamplerTally sampler_tally;
    std::thread sampler;
    if (stats_interval_ms != 0) {
        sampler = std::thread([&] {
            server::ClientOptions copts;
            copts.socketPath = socket_path;
            copts.seed = seed;
            copts.stream = clients + 1; // own jitter stream
            server::Client client(copts);
            static const char *const monotonic[] = {
                "requests.total", "accepted",  "shed",
                "completed",      "deadline",  "failed",
                "memo_hits",      "queue.peak"};
            std::map<std::string, double> prev;
            while (!sampler_stop.load(std::memory_order_relaxed)) {
                server::Request stats_req;
                stats_req.type = "stats";
                auto stats = client.call(stats_req);
                server::Request health_req;
                health_req.type = "health";
                auto health = client.call(health_req);
                if (stats.status != server::Status::Ok ||
                    health.status != server::Status::Ok) {
                    ++sampler_tally.failures;
                } else {
                    for (const char *key : monotonic) {
                        auto it = prev.find(key);
                        if (it != prev.end() &&
                            stats.values[key] < it->second)
                            ++sampler_tally.violations;
                        prev[key] = stats.values[key];
                    }
                }
                ++sampler_tally.samples;
                support::sleepForMs(stats_interval_ms);
            }
        });
    }
    for (uint64_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            server::ClientOptions copts;
            copts.socketPath = socket_path;
            copts.seed = seed;
            copts.stream = c;
            copts.maxAttempts =
                static_cast<uint32_t>(max_attempts);
            server::Client client(copts);
            // Separate stream for the workload draw so adding
            // retries never perturbs which requests are issued.
            Rng draw = Rng::forStream(seed, 1000 + c);
            auto &tally = tallies[c];
            for (uint64_t r = 0; r < requests; ++r) {
                const auto &entry =
                    pool[draw.zipf(pool.size(), zipf_s)];
                server::Request req;
                req.app = entry.app;
                req.machines = entry.machine;
                req.traceBlocks = trace_blocks;
                req.deadlineMs = deadline_ms;
                uint64_t t0 = support::monotonicNowNs();
                server::Response resp = client.call(req);
                double ms =
                    static_cast<double>(support::monotonicNowNs() -
                                        t0) /
                    1e6;
                switch (resp.status) {
                case server::Status::Ok:
                    ++tally.ok;
                    tally.okLatencyMs.push_back(ms);
                    break;
                case server::Status::Shed:
                    ++tally.shed;
                    break;
                case server::Status::DeadlineExceeded:
                    ++tally.deadline;
                    break;
                case server::Status::Failed:
                    ++tally.failed;
                    break;
                case server::Status::BadRequest:
                    ++tally.badRequest;
                    break;
                }
                if (think_ms != 0)
                    support::sleepForMs(think_ms);
            }
            tally.retries = client.retries();
            tally.retriesShed = client.retriesShed();
            tally.retriesTransport = client.retriesTransport();
            tally.transportFailures = client.transportFailures();
            tally.shedResponses = client.shedSeen();
        });
    }
    for (auto &t : threads)
        t.join();
    double wall_s = static_cast<double>(support::monotonicNowNs() -
                                        run_start) /
                    1e9;
    if (sampler.joinable()) {
        sampler_stop.store(true, std::memory_order_relaxed);
        sampler.join();
    }

    ClientTally sum;
    for (const auto &t : tallies) {
        sum.ok += t.ok;
        sum.shed += t.shed;
        sum.deadline += t.deadline;
        sum.failed += t.failed;
        sum.badRequest += t.badRequest;
        sum.retries += t.retries;
        sum.retriesShed += t.retriesShed;
        sum.retriesTransport += t.retriesTransport;
        sum.transportFailures += t.transportFailures;
        sum.shedResponses += t.shedResponses;
        sum.okLatencyMs.insert(sum.okLatencyMs.end(),
                               t.okLatencyMs.begin(),
                               t.okLatencyMs.end());
    }
    uint64_t total = clients * requests;
    uint64_t answered =
        sum.ok + sum.shed + sum.deadline + sum.failed +
        sum.badRequest;
    uint64_t attempts = total + sum.retries;

    // Server-side queue observability: was backpressure honored?
    // Also the reconciliation source: the server's counters must
    // account for every attempt this process sent it.
    double queue_peak = 0.0, watermark = 1.0;
    bool server_counters_ok = true;
    bool reconciled = true;
    double server_total = 0.0;
    {
        server::ClientOptions copts;
        copts.socketPath = socket_path;
        copts.seed = seed;
        copts.stream = clients; // its own jitter stream
        server::Client stats_client(copts);
        server::Request stats_req;
        stats_req.type = "stats";
        auto stats = stats_client.call(stats_req);
        if (stats.status == server::Status::Ok) {
            queue_peak = stats.values["queue.peak"];
            if (stats.values["queue.watermark"] > 0)
                watermark = stats.values["queue.watermark"];
            server_total = stats.values["requests.total"];
            // Internal identity: every received eval request ended
            // as exactly one of these (no client is mid-call now).
            double accounted = stats.values["memo_hits"] +
                               stats.values["shed"] +
                               stats.values["completed"] +
                               stats.values["deadline"] +
                               stats.values["failed"];
            server_counters_ok = server_total == accounted;
            // Cross-check against our own tally: each attempt that
            // made it over the wire is one server-side request
            // (assumes this loadgen is the server's only client).
            double wire_attempts = static_cast<double>(
                attempts - sum.transportFailures);
            reconciled = server_total == wire_attempts;
            if (!server_counters_ok)
                std::cerr << "FAIL: server counters do not add up: "
                          << "requests.total " << server_total
                          << " != " << accounted << " accounted\n";
            if (!reconciled)
                std::cerr << "FAIL: server saw " << server_total
                          << " request(s), loadgen sent "
                          << wire_attempts << "\n";
        } else {
            std::cerr << "warning: stats request failed ("
                      << server::statusName(stats.status) << ")\n";
        }
    }

    double p50 = percentile(sum.okLatencyMs, 0.50);
    double p99 = percentile(sum.okLatencyMs, 0.99);
    double throughput =
        wall_s > 0 ? static_cast<double>(sum.ok) / wall_s : 0.0;
    double shed_rate =
        attempts > 0 ? static_cast<double>(sum.shedResponses) /
                           static_cast<double>(attempts)
                     : 0.0;
    double deadline_rate =
        total > 0 ? static_cast<double>(sum.deadline) /
                        static_cast<double>(total)
                  : 0.0;

    std::cout << "server load: " << total << " request(s), "
              << sum.ok << " ok, " << sum.shed << " shed, "
              << sum.deadline << " deadline, " << sum.failed
              << " failed, " << sum.retries << " retried; p50 "
              << p50 << " ms, p99 " << p99 << " ms, " << throughput
              << " req/s; queue peak " << queue_peak << "/"
              << watermark << "\n";

    bench::BenchReport report("server_load");
    report.setInfo("clients", std::to_string(clients));
    report.setInfo("requests_per_client", std::to_string(requests));
    report.setInfo("zipf", std::to_string(zipf_s));
    report.setInfo("seed", std::to_string(seed));
    report.setInfo("deadline_ms", std::to_string(deadline_ms));
    report.setMetric("latency.p50.ms", p50);
    report.setMetric("latency.p99.ms", p99);
    report.setMetric("throughput.rps", throughput);
    report.setMetric("requests.total", total);
    report.setMetric("requests.ok", sum.ok);
    report.setMetric("requests.shed", sum.shed);
    report.setMetric("requests.deadline", sum.deadline);
    report.setMetric("requests.failed", sum.failed);
    report.setMetric("retries.total", sum.retries);
    report.setMetric("retries.shed", sum.retriesShed);
    report.setMetric("retries.transport", sum.retriesTransport);
    report.setMetric("transport.failures", sum.transportFailures);
    report.setMetric("attempts.total", attempts);
    report.setMetric("shed.responses", sum.shedResponses);
    report.setMetric("shed.rate", shed_rate);
    report.setMetric("deadline.rate", deadline_rate);
    report.setMetric("queue.peak_over_watermark",
                     watermark > 0 ? queue_peak / watermark : 0.0);
    report.setMetric("server.requests.total", server_total);
    report.setMetric("server.reconciled",
                     (server_counters_ok && reconciled) ? 1.0 : 0.0);
    if (stats_interval_ms != 0) {
        report.setMetric("stats.samples", sampler_tally.samples);
        report.setMetric("stats.failures", sampler_tally.failures);
        report.setMetric("stats.violations",
                         sampler_tally.violations);
    }
    if (!bench::writeReport(report, json_out))
        return 1;

    // Every request must reach a terminal answer (no hangs, no
    // losses), and a correct client/server pair never produces
    // bad_request.
    if (answered != total || sum.badRequest != 0) {
        std::cerr << "FAIL: " << answered << "/" << total
                  << " answered, " << sum.badRequest
                  << " bad_request\n";
        return 1;
    }
    if (!server_counters_ok || !reconciled)
        return 1;
    if (sampler_tally.violations != 0) {
        std::cerr << "FAIL: " << sampler_tally.violations
                  << " non-monotonic mid-run stats sample(s)\n";
        return 1;
    }
    return 0;
}
