/**
 * @file
 * Trace file converter: re-encode a captured trace file in either
 * the row-wise text format (v2) or the blocked columnar binary
 * format (v3). The record stream and its whole-file checksum are
 * preserved bit-for-bit in both directions, so a converted file
 * replays identically to its source.
 *
 * Usage: trace_convert <input> <output> [--format v2|v3]
 *   input    a v1/v2 text or v3 columnar trace file (sniffed)
 *   --format target format (default v3)
 * Flags accept both `--flag value` and `--flag=value`.
 *
 * Exit codes distinguish *why* a conversion failed, so scripts can
 * react (retry, alert, skip):
 *   0  converted cleanly
 *   1  other conversion failure
 *   2  bad usage (arguments)
 *   3  corrupt input (bad header/record/checksum — retrying is
 *      pointless, the bytes are wrong)
 *   4  I/O error (cannot open/read/write — the environment failed,
 *      the file may be fine)
 */

#include <iostream>
#include <string>

#include "support/Logging.hpp"
#include "trace/ColumnarTrace.hpp"
#include "trace/TraceErrors.hpp"
#include "trace/TraceFile.hpp"

using namespace pico;

namespace
{

/** Match `--flag value` or `--flag=value`; fills `value` on match. */
bool
flagValue(int argc, char **argv, int &i, const std::string &flag,
          std::string &value)
{
    std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
        value = arg.substr(flag.size() + 1);
        return true;
    }
    return false;
}

template <typename Writer>
uint64_t
convert(const std::string &input, Writer &writer)
{
    uint64_t records = 0;
    trace::replayTraceFile(input,
                           [&writer, &records](const trace::Access &a) {
                               writer(a);
                               ++records;
                           });
    writer.close();
    return records;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, output, format = "v3", value;
    for (int i = 1; i < argc; ++i) {
        if (flagValue(argc, argv, i, "--format", value)) {
            format = value;
        } else if (input.empty()) {
            input = argv[i];
        } else if (output.empty()) {
            output = argv[i];
        } else {
            std::cerr << "unexpected argument: " << argv[i] << "\n";
            return 2;
        }
    }
    if (input.empty() || output.empty() ||
        (format != "v2" && format != "v3")) {
        std::cerr << "usage: trace_convert <input> <output> "
                     "[--format v2|v3]\n";
        return 2;
    }

    try {
        int from = trace::sniffTraceFileVersion(input);
        uint64_t records = 0;
        if (format == "v3") {
            trace::ColumnarTraceWriter writer(output);
            records = convert(input, writer);
        } else {
            trace::TraceFileWriter writer(output);
            records = convert(input, writer);
        }
        std::cout << "converted " << records << " records: v" << from
                  << " " << input << " -> " << format << " " << output
                  << "\n";
    } catch (const trace::TraceCorruptionError &e) {
        std::cerr << "corrupt input: " << e.what() << "\n";
        return 3;
    } catch (const trace::TraceIoError &e) {
        std::cerr << "I/O error: " << e.what() << "\n";
        return 4;
    } catch (const std::exception &e) {
        std::cerr << "conversion failed: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
